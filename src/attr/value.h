#pragma once
// Attribute values and range predicates (paper §II-A).
//
// BlueDove's model: given k attributes, a message is a point in the
// k-dimensional attribute space and a subscription is the conjunction of
// k half-open range predicates [l, u) — i.e. a hyper-cuboid.

#include <algorithm>
#include <ostream>

#include "common/serde.h"

namespace bluedove {

/// Attribute values are ordered scalars. The paper's workloads (longitude,
/// latitude, speed, timestamp, prices, ...) are all numeric; a double covers
/// them. String attributes can be mapped onto doubles by order-preserving
/// hashing at the client boundary.
using Value = double;

/// Half-open interval [lo, hi). An empty range has hi <= lo.
struct Range {
  Value lo = 0.0;
  Value hi = 0.0;

  constexpr bool contains(Value v) const { return lo <= v && v < hi; }
  constexpr bool overlaps(const Range& o) const {
    return lo < o.hi && o.lo < hi;
  }
  constexpr bool empty() const { return hi <= lo; }
  constexpr Value width() const { return hi > lo ? hi - lo : 0.0; }

  /// Intersection; empty() when disjoint.
  constexpr Range intersect(const Range& o) const {
    return Range{std::max(lo, o.lo), std::min(hi, o.hi)};
  }

  /// True when this range fully contains the other.
  constexpr bool covers(const Range& o) const {
    return lo <= o.lo && o.hi <= hi;
  }

  friend constexpr bool operator==(const Range&, const Range&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const Range& r) {
  return os << '[' << r.lo << ',' << r.hi << ')';
}

inline void write_range(serde::Writer& w, const Range& r) {
  w.f64(r.lo);
  w.f64(r.hi);
}

inline Range read_range(serde::Reader& r) {
  Range out;
  out.lo = r.f64();
  out.hi = r.f64();
  return out;
}

}  // namespace bluedove
