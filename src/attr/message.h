#pragma once
// A published message: a point in the attribute space plus an opaque payload.

#include <string>
#include <vector>

#include "attr/value.h"
#include "common/serde.h"
#include "common/types.h"

namespace bluedove {

struct Message {
  MessageId id = 0;
  std::vector<Value> values;  ///< one coordinate per schema dimension
  std::string payload;        ///< application data, not used for matching

  Value value(DimId dim) const { return values[dim]; }
  std::size_t dimensions() const { return values.size(); }
};

void write_message(serde::Writer& w, const Message& m);
Message read_message(serde::Reader& r);

}  // namespace bluedove
