#pragma once
// A published message: a point in the attribute space plus an opaque payload.

#include <vector>

#include "attr/payload.h"
#include "attr/value.h"
#include "common/serde.h"
#include "common/types.h"

namespace bluedove {

struct Message {
  MessageId id = 0;
  std::vector<Value> values;  ///< one coordinate per schema dimension
  /// Application data, not used for matching. Shared by refcount: copying
  /// a Message (dispatcher buffering, fan-out) never copies the bytes.
  PayloadRef payload;

  Value value(DimId dim) const { return values[dim]; }
  std::size_t dimensions() const { return values.size(); }
};

void write_message(serde::Writer& w, const Message& m);
Message read_message(serde::Reader& r);

}  // namespace bluedove
