#pragma once
// P2P-style baseline (paper §IV-B): subscriptions are partitioned along one
// dimension only, as DHT-based pub/sub systems such as PastryStrings and
// Sub-2-Sub do. A subscription is stored on every matcher whose segment on
// the chosen dimension overlaps its predicate there; a message has exactly
// ONE candidate matcher (the owner of the segment containing its value on
// that dimension), so no forwarding choice exists and skew cannot be
// avoided. The paper's comparison gives this baseline the same one-hop
// gossip overlay as BlueDove, which this implementation shares by
// construction (same MatcherNode / DispatcherNode / Gossiper).

#include "core/partition_strategy.h"

namespace bluedove {

class SingleDimPartition final : public PartitionStrategy {
 public:
  explicit SingleDimPartition(DimId dim = 0) : dim_(dim) {}

  const char* name() const override { return "p2p-single-dim"; }

  std::vector<Assignment> assign(const SegmentView& view,
                                 const Subscription& sub) const override;
  std::vector<Assignment> candidates(const SegmentView& view,
                                     const Message& msg) const override;

  DimId dim() const { return dim_; }

 private:
  DimId dim_;
};

}  // namespace bluedove
