#pragma once
// Full-replication baseline (paper §IV-B): the strategy used by traditional
// enterprise pub/sub clusters. Every subscription is stored on every
// matcher (filed under dimension 0), so any matcher can match any message;
// dispatchers spread messages across matchers at random. Adding matchers
// divides the message rate but not the per-message matching cost, which is
// why this baseline scales so poorly in Fig 6.

#include "core/partition_strategy.h"

namespace bluedove {

class FullReplication final : public PartitionStrategy {
 public:
  const char* name() const override { return "full-replication"; }

  std::vector<Assignment> assign(const SegmentView& view,
                                 const Subscription& sub) const override;
  std::vector<Assignment> candidates(const SegmentView& view,
                                     const Message& msg) const override;
};

}  // namespace bluedove
