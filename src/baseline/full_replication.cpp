#include "baseline/full_replication.h"

namespace bluedove {

std::vector<Assignment> FullReplication::assign(const SegmentView& view,
                                                const Subscription&) const {
  std::vector<Assignment> out;
  for (const auto& seg : view.segments(0)) {
    out.push_back(Assignment{seg.owner, 0});
  }
  return out;
}

std::vector<Assignment> FullReplication::candidates(const SegmentView& view,
                                                    const Message&) const {
  std::vector<Assignment> out;
  for (const auto& seg : view.segments(0)) {
    out.push_back(Assignment{seg.owner, 0});
  }
  return out;
}

}  // namespace bluedove
