#include "baseline/single_dim_partition.h"

namespace bluedove {

std::vector<Assignment> SingleDimPartition::assign(
    const SegmentView& view, const Subscription& sub) const {
  std::vector<Assignment> out;
  if (dim_ >= view.dimensions()) return out;
  for (NodeId owner : view.overlapping(dim_, sub.range(dim_))) {
    out.push_back(Assignment{owner, dim_});
  }
  return out;
}

std::vector<Assignment> SingleDimPartition::candidates(
    const SegmentView& view, const Message& msg) const {
  std::vector<Assignment> out;
  if (dim_ >= view.dimensions()) return out;
  const NodeId owner = view.owner(dim_, msg.value(dim_));
  if (owner != kInvalidNode) out.push_back(Assignment{owner, dim_});
  return out;
}

}  // namespace bluedove
