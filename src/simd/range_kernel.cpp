#include "simd/range_kernel.h"

#include <atomic>
#include <cstdlib>

namespace bluedove::simd {

namespace detail {
// Defined in range_kernel_avx2.cpp / range_kernel_avx512.cpp /
// range_kernel_neon.cpp; nullptr when the variant is not compiled for
// this target.
const RangeKernel* avx2_kernel();
const RangeKernel* avx512_kernel();
const RangeKernel* neon_kernel();
}  // namespace detail

namespace {

std::size_t scan_scalar(const double* lo, const double* hi, std::size_t n,
                        double v, std::uint32_t* sel) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sel[count] = static_cast<std::uint32_t>(i);
    count += static_cast<std::size_t>((lo[i] <= v) & (v < hi[i]));
  }
  return count;
}

std::size_t compact_scalar(const double* lo, const double* hi, double v,
                           std::uint32_t* sel, std::size_t count) {
  std::size_t kept = 0;
  for (std::size_t j = 0; j < count; ++j) {
    const std::uint32_t i = sel[j];
    sel[kept] = i;
    kept += static_cast<std::size_t>((lo[i] <= v) & (v < hi[i]));
  }
  return kept;
}

constexpr RangeKernel kScalarKernel{scan_scalar, compact_scalar,
                                    KernelKind::kScalar, "scalar", 1};

/// Capability-based choice: widest runnable variant, else scalar.
const RangeKernel* dispatch_auto() {
  if (const RangeKernel* k = detail::avx512_kernel(); k && runnable(*k)) {
    return k;
  }
  if (const RangeKernel* k = detail::avx2_kernel(); k && runnable(*k)) {
    return k;
  }
  if (const RangeKernel* k = detail::neon_kernel(); k && runnable(*k)) {
    return k;
  }
  return &kScalarKernel;
}

/// Startup choice: BLUEDOVE_SIMD env override wins, else auto dispatch.
const RangeKernel* dispatch_startup() {
  if (const char* env = std::getenv("BLUEDOVE_SIMD");
      env != nullptr && *env != '\0') {
    const std::string mode(env);
    if (mode == "off" || mode == "scalar") return &kScalarKernel;
    if (mode != "auto") {
      if (const RangeKernel* k = kernel_by_name(mode); k && runnable(*k)) {
        return k;
      }
      // Unknown / unusable request: fall through to auto rather than run
      // a kernel the CPU cannot execute.
    }
  }
  return dispatch_auto();
}

std::atomic<const RangeKernel*> g_active{nullptr};

}  // namespace

const RangeKernel& scalar_kernel() { return kScalarKernel; }

const std::vector<const RangeKernel*>& compiled_kernels() {
  static const std::vector<const RangeKernel*> kAll = [] {
    std::vector<const RangeKernel*> all{&kScalarKernel};
    if (const RangeKernel* k = detail::avx2_kernel()) all.push_back(k);
    if (const RangeKernel* k = detail::avx512_kernel()) all.push_back(k);
    if (const RangeKernel* k = detail::neon_kernel()) all.push_back(k);
    return all;
  }();
  return kAll;
}

bool runnable(const RangeKernel& k) {
  switch (k.kind) {
    case KernelKind::kScalar:
      return true;
    case KernelKind::kAvx2:
#if defined(__x86_64__) || defined(_M_X64)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case KernelKind::kAvx512:
#if defined(__x86_64__) || defined(_M_X64)
      // The kernels use compressed stores on 256-bit index vectors, which
      // needs the VL extension on top of the foundation.
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512vl") != 0;
#else
      return false;
#endif
    case KernelKind::kNeon:
#if defined(__aarch64__)
      return true;  // AdvSIMD is mandatory on aarch64
#else
      return false;
#endif
  }
  return false;
}

const RangeKernel* kernel_by_name(const std::string& name) {
  for (const RangeKernel* k : compiled_kernels()) {
    if (name == k->name) return k;
  }
  return nullptr;
}

const RangeKernel& active_kernel() {
  const RangeKernel* k = g_active.load(std::memory_order_acquire);
  if (k == nullptr) {
    k = dispatch_startup();
    // Racing first calls resolve identically; either store wins.
    g_active.store(k, std::memory_order_release);
  }
  return *k;
}

bool set_kernel(const std::string& mode) {
  const RangeKernel* k = nullptr;
  if (mode == "auto") {
    k = dispatch_auto();
  } else if (mode == "off" || mode == "scalar") {
    k = &kScalarKernel;
  } else {
    const RangeKernel* named = kernel_by_name(mode);
    if (named == nullptr || !runnable(*named)) return false;
    k = named;
  }
  g_active.store(k, std::memory_order_release);
  return true;
}

}  // namespace bluedove::simd
