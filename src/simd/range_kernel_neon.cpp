// NEON (AdvSIMD) variant of the range-compare kernel family for aarch64,
// where 128-bit SIMD is architecturally mandatory — no runtime probe
// needed. Like the AVX2 TU, this file is the only place NEON intrinsics
// are allowed (bd_lint rule `intrinsics`).
//
// vcleq_f64 / vcltq_f64 return all-zero lanes when either operand is NaN,
// matching the scalar (lo <= v) & (v < hi) semantics. Loads are unaligned.

#include "simd/range_kernel.h"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace bluedove::simd {
namespace {

std::size_t scan_neon(const double* lo, const double* hi, std::size_t n,
                      double v, std::uint32_t* sel) {
  const float64x2_t vv = vdupq_n_f64(v);
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t in =
        vandq_u64(vcleq_f64(vld1q_f64(lo + i), vv),
                  vcltq_f64(vv, vld1q_f64(hi + i)));
    sel[count] = static_cast<std::uint32_t>(i);
    count += static_cast<std::size_t>(vgetq_lane_u64(in, 0) & 1u);
    sel[count] = static_cast<std::uint32_t>(i) + 1;
    count += static_cast<std::size_t>(vgetq_lane_u64(in, 1) & 1u);
  }
  for (; i < n; ++i) {
    sel[count] = static_cast<std::uint32_t>(i);
    count += static_cast<std::size_t>((lo[i] <= v) & (v < hi[i]));
  }
  return count;
}

std::size_t compact_neon(const double* lo, const double* hi, double v,
                         std::uint32_t* sel, std::size_t count) {
  const float64x2_t vv = vdupq_n_f64(v);
  std::size_t kept = 0;
  std::size_t j = 0;
  for (; j + 2 <= count; j += 2) {
    const std::uint32_t i0 = sel[j];
    const std::uint32_t i1 = sel[j + 1];
    float64x2_t l = vdupq_n_f64(lo[i0]);
    l = vsetq_lane_f64(lo[i1], l, 1);
    float64x2_t h = vdupq_n_f64(hi[i0]);
    h = vsetq_lane_f64(hi[i1], h, 1);
    const uint64x2_t in = vandq_u64(vcleq_f64(l, vv), vcltq_f64(vv, h));
    sel[kept] = i0;
    kept += static_cast<std::size_t>(vgetq_lane_u64(in, 0) & 1u);
    sel[kept] = i1;
    kept += static_cast<std::size_t>(vgetq_lane_u64(in, 1) & 1u);
  }
  for (; j < count; ++j) {
    const std::uint32_t i = sel[j];
    sel[kept] = i;
    kept += static_cast<std::size_t>((lo[i] <= v) & (v < hi[i]));
  }
  return kept;
}

constexpr RangeKernel kNeonKernel{scan_neon, compact_neon, KernelKind::kNeon,
                                  "neon", 2};

}  // namespace

namespace detail {
const RangeKernel* neon_kernel() { return &kNeonKernel; }
}  // namespace detail

}  // namespace bluedove::simd

#else  // not aarch64

namespace bluedove::simd::detail {
const RangeKernel* neon_kernel() { return nullptr; }
}  // namespace bluedove::simd::detail

#endif
