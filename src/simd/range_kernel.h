#pragma once
// Runtime-dispatched range-compare kernels for the columnar match probe.
//
// The FlatBucketIndex probe is two loops over contiguous double columns:
// a full scan of dimension 0 that emits a selection vector, and an
// in-place compaction of that selection through dimensions 1..k-1. Both
// loops compare one message coordinate v against packed lo/hi columns with
// half-open semantics (lo <= v && v < hi). This header exposes that pair
// of loops as a kernel family with one scalar reference implementation
// (always compiled, the differential oracle) and wide variants per ISA
// (AVX2 and AVX-512 on x86-64, NEON on aarch64) compiled into their own
// translation units so the rest of the tree never needs -mavx2/-mavx512f.
//
// Dispatch: the active kernel is chosen once, lazily, from (a) the
// BLUEDOVE_SIMD environment variable if set ("auto", "scalar", "avx2",
// "avx512", "neon", "off"), else (b) CPU capability probing
// (__builtin_cpu_supports on x86-64, unconditional NEON on aarch64),
// preferring the widest runnable variant and falling back to scalar. The
// choice can be overridden at runtime with set_kernel() (the --simd flag
// of bluedove_cli / bluedove_noded and the bench sweeps use this).
//
// Semantics contract (what the tests pin against the scalar oracle):
//   - half-open containment: selected iff lo[i] <= v && v < hi[i]
//   - IEEE comparisons: any NaN operand deselects (ordered-quiet compares)
//   - selection indices are emitted in ascending order, exactly the
//     indices the scalar loop would produce (byte-identical output)
//   - columns need no special alignment: kernels use unaligned loads, so
//     plain std::vector<double> storage is fine (see DESIGN.md §12)

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace bluedove::simd {

enum class KernelKind { kScalar, kAvx2, kAvx512, kNeon };

struct RangeKernel {
  /// Scans lo[0..n) / hi[0..n) against v and writes the selected indices
  /// (ascending) into sel[0..return). sel must have room for n entries.
  using ScanFn = std::size_t (*)(const double* lo, const double* hi,
                                 std::size_t n, double v, std::uint32_t* sel);
  /// Compacts sel[0..count) in place, keeping index i iff
  /// lo[i] <= v && v < hi[i]. Returns the surviving count.
  using CompactFn = std::size_t (*)(const double* lo, const double* hi,
                                    double v, std::uint32_t* sel,
                                    std::size_t count);

  ScanFn scan = nullptr;
  CompactFn compact = nullptr;
  KernelKind kind = KernelKind::kScalar;
  const char* name = "scalar";
  std::size_t lanes = 1;  ///< doubles per vector register
};

/// The portable reference kernel; always compiled in.
const RangeKernel& scalar_kernel();

/// Every kernel variant compiled into this binary (scalar always present;
/// a wide variant appears even when the running CPU cannot execute it —
/// check runnable() before invoking one directly).
const std::vector<const RangeKernel*>& compiled_kernels();

/// True when the running CPU can execute `k`.
bool runnable(const RangeKernel& k);

/// Looks a compiled-in variant up by name; nullptr when absent.
const RangeKernel* kernel_by_name(const std::string& name);

/// The kernel the probe path currently uses. First call resolves the
/// BLUEDOVE_SIMD environment variable / CPU capabilities.
const RangeKernel& active_kernel();

/// Selects the active kernel: "auto" re-runs capability dispatch,
/// "off"/"scalar" force the reference kernel, "avx2"/"neon" force a wide
/// variant. Returns false (active kernel unchanged) when the variant is
/// not compiled in or the CPU cannot run it.
bool set_kernel(const std::string& mode);

}  // namespace bluedove::simd
