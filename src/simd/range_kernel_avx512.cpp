// AVX-512 variant of the range-compare kernel family (8 doubles per
// vector). Compiled only for x86-64, in its own translation unit with
// per-file -mavx512f -mavx512vl; the dispatcher selects it after
// __builtin_cpu_supports confirms both features at runtime.
//
// This is the ISA the selection-vector pattern was made for:
// _mm512_cmp_pd_mask produces the lane mask directly in a mask register
// and _mm256_mask_compressstoreu_epi32 left-packs the surviving indices in
// one instruction — no lane LUT, no over-store, exactly popcount(mask)
// entries written. Comparison predicates are the same ordered-quiet
// _CMP_LE_OQ / _CMP_LT_OQ as the AVX2 variant, so NaN deselects exactly
// like the scalar (lo <= v) & (v < hi).

#include "simd/range_kernel.h"

#if defined(__x86_64__) && defined(__AVX512F__) && defined(__AVX512VL__)

#include <immintrin.h>

namespace bluedove::simd {
namespace {

inline __mmask8 range_mask8(__m512d lo, __m512d hi, __m512d v) {
  return _mm512_cmp_pd_mask(lo, v, _CMP_LE_OQ) &
         _mm512_cmp_pd_mask(v, hi, _CMP_LT_OQ);
}

std::size_t scan_avx512(const double* lo, const double* hi, std::size_t n,
                        double v, std::uint32_t* sel) {
  const __m512d vv = _mm512_set1_pd(v);
  const __m256i step = _mm256_set1_epi32(8);
  __m256i idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __mmask8 mask =
        range_mask8(_mm512_loadu_pd(lo + i), _mm512_loadu_pd(hi + i), vv);
    _mm256_mask_compressstoreu_epi32(sel + count, mask, idx);
    count += static_cast<std::size_t>(__builtin_popcount(mask));
    idx = _mm256_add_epi32(idx, step);
  }
  for (; i < n; ++i) {
    sel[count] = static_cast<std::uint32_t>(i);
    count += static_cast<std::size_t>((lo[i] <= v) & (v < hi[i]));
  }
  return count;
}

std::size_t compact_avx512(const double* lo, const double* hi, double v,
                           std::uint32_t* sel, std::size_t count) {
  const __m512d vv = _mm512_set1_pd(v);
  std::size_t kept = 0;
  std::size_t j = 0;
  for (; j + 8 <= count; j += 8) {
    // Indices are read into a register before the in-place compress-store
    // (kept <= j always), so the store cannot clobber this group's input.
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sel + j));
    const __mmask8 mask = range_mask8(_mm512_i32gather_pd(idx, lo, 8),
                                      _mm512_i32gather_pd(idx, hi, 8), vv);
    _mm256_mask_compressstoreu_epi32(sel + kept, mask, idx);
    kept += static_cast<std::size_t>(__builtin_popcount(mask));
  }
  for (; j < count; ++j) {
    const std::uint32_t i = sel[j];
    sel[kept] = i;
    kept += static_cast<std::size_t>((lo[i] <= v) & (v < hi[i]));
  }
  return kept;
}

constexpr RangeKernel kAvx512Kernel{scan_avx512, compact_avx512,
                                    KernelKind::kAvx512, "avx512", 8};

}  // namespace

namespace detail {
const RangeKernel* avx512_kernel() { return &kAvx512Kernel; }
}  // namespace detail

}  // namespace bluedove::simd

#else  // not an AVX-512-capable build target

namespace bluedove::simd::detail {
const RangeKernel* avx512_kernel() { return nullptr; }
}  // namespace bluedove::simd::detail

#endif
