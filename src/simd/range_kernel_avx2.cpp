// AVX2 variant of the range-compare kernel family. This translation unit
// is the only place x86 intrinsics are allowed (bd_lint rule `intrinsics`);
// it is compiled with -mavx2 on x86-64 and the dispatcher only selects it
// after __builtin_cpu_supports("avx2") says the CPU can run it.
//
// Comparison semantics: _CMP_LE_OQ / _CMP_LT_OQ are ordered-quiet, i.e.
// false when either operand is NaN — exactly the scalar
// (lo <= v) & (v < hi). Loads are unaligned (loadu), so the columns carry
// no alignment requirement beyond std::vector's.

#include "simd/range_kernel.h"

#if defined(__x86_64__) && defined(__AVX2__)

#include <immintrin.h>

namespace bluedove::simd {
namespace {

inline int range_mask(__m256d lo, __m256d hi, __m256d v) {
  const __m256d in = _mm256_and_pd(_mm256_cmp_pd(lo, v, _CMP_LE_OQ),
                                   _mm256_cmp_pd(v, hi, _CMP_LT_OQ));
  return _mm256_movemask_pd(in);
}

// mask -> the selected lane ids packed to the front (ascending), junk lanes
// repeating lane 0 behind them. Drives the branchless left-pack: a shuffle
// by kLaneLut[mask] followed by one unconditional 4-lane store replaces the
// data-dependent ctz loop, whose branch mispredicts dominate as soon as
// match density is non-trivial.
alignas(16) constexpr std::uint32_t kLaneLut[16][4] = {
    {0, 0, 0, 0}, {0, 0, 0, 0}, {1, 0, 0, 0}, {0, 1, 0, 0},
    {2, 0, 0, 0}, {0, 2, 0, 0}, {1, 2, 0, 0}, {0, 1, 2, 0},
    {3, 0, 0, 0}, {0, 3, 0, 0}, {1, 3, 0, 0}, {0, 1, 3, 0},
    {2, 3, 0, 0}, {0, 2, 3, 0}, {1, 2, 3, 0}, {0, 1, 2, 3}};

std::size_t scan_avx2(const double* lo, const double* hi, std::size_t n,
                      double v, std::uint32_t* sel) {
  const __m256d vv = _mm256_set1_pd(v);
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const int mask =
        range_mask(_mm256_loadu_pd(lo + i), _mm256_loadu_pd(hi + i), vv);
    const __m128i lanes =
        _mm_load_si128(reinterpret_cast<const __m128i*>(kLaneLut[mask]));
    const __m128i idx =
        _mm_add_epi32(_mm_set1_epi32(static_cast<int>(i)), lanes);
    // Always stores 4 entries, of which only popcount(mask) survive. In
    // bounds: count <= i holds (at most one match per row seen so far), so
    // the last byte written is at index count+3 <= i+3 <= n-1.
    _mm_storeu_si128(reinterpret_cast<__m128i*>(sel + count), idx);
    count += static_cast<std::size_t>(
        __builtin_popcount(static_cast<unsigned>(mask)));
  }
  for (; i < n; ++i) {
    sel[count] = static_cast<std::uint32_t>(i);
    count += static_cast<std::size_t>((lo[i] <= v) & (v < hi[i]));
  }
  return count;
}

std::size_t compact_avx2(const double* lo, const double* hi, double v,
                         std::uint32_t* sel, std::size_t count) {
  const __m256d vv = _mm256_set1_pd(v);
  std::size_t kept = 0;
  std::size_t j = 0;
  for (; j + 4 <= count; j += 4) {
    // The group's indices live in a register before any in-place store, so
    // sel[kept] writes (kept <= j always) cannot clobber this iteration's
    // input; the store itself stays in bounds for the same count<=i
    // argument as scan_avx2 (kept+3 <= j+3 <= count-1).
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(sel + j));
    const int mask = range_mask(_mm256_i32gather_pd(lo, idx, 8),
                                _mm256_i32gather_pd(hi, idx, 8), vv);
    const __m128i perm =
        _mm_load_si128(reinterpret_cast<const __m128i*>(kLaneLut[mask]));
    const __m128i packed = _mm_castps_si128(
        _mm_permutevar_ps(_mm_castsi128_ps(idx), perm));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(sel + kept), packed);
    kept += static_cast<std::size_t>(
        __builtin_popcount(static_cast<unsigned>(mask)));
  }
  for (; j < count; ++j) {
    const std::uint32_t i = sel[j];
    sel[kept] = i;
    kept += static_cast<std::size_t>((lo[i] <= v) & (v < hi[i]));
  }
  return kept;
}

constexpr RangeKernel kAvx2Kernel{scan_avx2, compact_avx2, KernelKind::kAvx2,
                                  "avx2", 4};

}  // namespace

namespace detail {
const RangeKernel* avx2_kernel() { return &kAvx2Kernel; }
}  // namespace detail

}  // namespace bluedove::simd

#else  // not an AVX2-capable build target

namespace bluedove::simd::detail {
const RangeKernel* avx2_kernel() { return nullptr; }
}  // namespace bluedove::simd::detail

#endif
