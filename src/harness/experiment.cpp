#include "harness/experiment.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "obs/audit.h"

namespace bluedove {

const char* to_string(SystemKind kind) {
  switch (kind) {
    case SystemKind::kBlueDove:
      return "bluedove";
    case SystemKind::kP2P:
      return "p2p";
    case SystemKind::kFullReplication:
      return "full-rep";
  }
  return "unknown";
}

namespace {
constexpr NodeId kMetricsSink = 1;
constexpr NodeId kDeliverySink = 2;
constexpr NodeId kFirstDispatcher = 10;
constexpr NodeId kFirstMatcher = 1000;
}  // namespace

Deployment::Deployment(ExperimentConfig config)
    : config_(std::move(config)),
      schema_(AttributeSchema::uniform(config_.dims, config_.domain_length)),
      sim_(config_.sim),
      rng_(config_.seed ^ 0x9e3779b97f4a7c15ULL) {
  SubscriptionWorkload sub_wl;
  sub_wl.schema = schema_;
  sub_wl.predicate_width = config_.predicate_width;
  sub_wl.sigma = config_.sub_sigma;
  sub_wl.duplicate_skew = config_.duplicate_skew;
  sub_wl.duplicate_jitter = config_.duplicate_jitter;
  sub_gen_ = std::make_unique<SubscriptionGenerator>(sub_wl,
                                                     config_.seed * 3 + 1);
  MessageWorkload msg_wl;
  msg_wl.schema = schema_;
  msg_wl.skewed_dims = config_.msg_skewed_dims;
  msg_wl.sigma = config_.msg_sigma;
  msg_gen_ = std::make_unique<MessageGenerator>(msg_wl, config_.seed * 5 + 2);
}

Deployment::~Deployment() = default;

std::shared_ptr<const PartitionStrategy> Deployment::make_strategy() const {
  switch (config_.system) {
    case SystemKind::kBlueDove: {
      MPartition::Options options = config_.mpartition;
      options.searchable_dims = config_.searchable_dims;
      return std::make_shared<const MPartition>(options);
    }
    case SystemKind::kP2P:
      return std::make_shared<const SingleDimPartition>(DimId{0});
    case SystemKind::kFullReplication:
      return std::make_shared<const FullReplication>();
  }
  return nullptr;
}

MatcherConfig Deployment::matcher_config() const {
  MatcherConfig cfg;
  cfg.domains.reserve(config_.dims);
  for (std::size_t d = 0; d < config_.dims; ++d) {
    cfg.domains.push_back(schema_.domain(static_cast<DimId>(d)));
  }
  cfg.cores = config_.cores;
  cfg.index_kind = config_.index_kind;
  cfg.match_batch = config_.match_batch;
  cfg.match_mode = config_.full_matching ? MatcherConfig::MatchMode::kFull
                                         : MatcherConfig::MatchMode::kCostOnly;
  cfg.load_report_interval = config_.load_report_interval;
  cfg.gossip = config_.gossip;
  cfg.split_policy = config_.median_split
                         ? MatcherConfig::SplitPolicy::kMedian
                         : MatcherConfig::SplitPolicy::kMidpoint;
  cfg.dispatchers = dispatcher_ids_;
  cfg.metrics_sink = kMetricsSink;
  cfg.delivery_sink = kDeliverySink;
  cfg.deliver = config_.full_matching;
  cfg.cover.enabled = config_.cover;
  cfg.cover.fp_volume_budget = config_.cover_budget;
  return cfg;
}

DispatcherConfig Deployment::dispatcher_config() const {
  DispatcherConfig cfg;
  cfg.domains.reserve(config_.dims);
  for (std::size_t d = 0; d < config_.dims; ++d) {
    cfg.domains.push_back(schema_.domain(static_cast<DimId>(d)));
  }
  cfg.strategy = make_strategy();
  // The paper's full-replication baseline dispatches randomly; the other
  // systems use the configured policy (irrelevant for P2P's one candidate).
  cfg.policy = config_.system == SystemKind::kFullReplication
                   ? PolicyKind::kRandom
                   : config_.policy;
  cfg.table_pull_interval = config_.table_pull_interval;
  cfg.dispatcher_count = config_.dispatchers;
  cfg.auto_scale = config_.auto_scale;
  cfg.reliable_delivery = config_.reliable_delivery;
  cfg.trace_sample_rate = config_.trace_sample_rate;
  return cfg;
}

void Deployment::build() {
  // Sinks.
  sim_.add_node(kMetricsSink,
                std::make_unique<FunctionNode>(
                    [this](NodeId, const Envelope& env, Timestamp now) {
                      const auto* done =
                          std::get_if<MatchCompleted>(&env.payload);
                      if (done == nullptr) return;
                      // Reliable mode can re-match a message on a second
                      // matcher (at-least-once); count each message once.
                      if (config_.reliable_delivery &&
                          !completed_ids_.insert(done->msg_id).second) {
                        return;
                      }
                      responses_.add(now, now - done->dispatched_at);
                      losses_.on_completed(now);
                      if (done->trace_id != 0) {
                        breakdown_.record(done->dispatched_at, done->hops,
                                          now);
                      }
                    }),
                1);
  sim_.add_node(kDeliverySink,
                std::make_unique<FunctionNode>(
                    [this](NodeId, const Envelope& env, Timestamp now) {
                      const auto* delivery = std::get_if<Delivery>(&env.payload);
                      if (delivery != nullptr && on_delivery) {
                        on_delivery(*delivery, now);
                      }
                    }),
                1);

  // Dispatchers.
  for (std::size_t i = 0; i < config_.dispatchers; ++i) {
    dispatcher_ids_.push_back(kFirstDispatcher + static_cast<NodeId>(i));
  }
  // Matchers.
  next_matcher_id_ = kFirstMatcher;
  for (std::size_t i = 0; i < config_.matchers; ++i) {
    matcher_ids_.push_back(next_matcher_id_++);
  }

  std::vector<Range> domains;
  for (std::size_t d = 0; d < config_.dims; ++d) {
    domains.push_back(schema_.domain(static_cast<DimId>(d)));
  }
  const ClusterTable bootstrap = bootstrap_table(matcher_ids_, domains);

  for (NodeId id : dispatcher_ids_) {
    auto node = std::make_unique<DispatcherNode>(id, dispatcher_config());
    node->set_bootstrap(bootstrap);
    sim_.add_node(id, std::move(node), config_.cores);
  }
  for (NodeId id : matcher_ids_) {
    auto node = std::make_unique<MatcherNode>(id, matcher_config());
    node->set_bootstrap(bootstrap);
    sim_.add_node(id, std::move(node), config_.cores);
  }
  sim_.start_all();

  if (config_.auto_scale && !dispatcher_ids_.empty()) {
    if (auto* d0 = dispatcher(dispatcher_ids_.front())) {
      d0->on_need_capacity = [this] {
        const NodeId id = add_matcher();
        BD_INFO("auto-scaler provisioned matcher ", id, " at t=", now());
      };
    }
  }
}

void Deployment::start() {
  if (started_) return;
  started_ = true;
  build();
  sim_.run_for(0.1);
  load_subscriptions(config_.subscriptions);
}

void Deployment::load_subscriptions(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    Subscription sub = sub_gen_->next();
    const NodeId target =
        dispatcher_ids_[next_dispatcher_rr_++ % dispatcher_ids_.size()];
    sim_.inject(target, Envelope::of(ClientSubscribe{std::move(sub)}));
  }
  subs_loaded_ += n;
  sim_.run_for(1.0);  // let the stores land
}

void Deployment::add_subscriptions(std::size_t n) { load_subscriptions(n); }

void Deployment::replay(const WorkloadTrace& trace) {
  const Timestamp base = now();
  for (const TraceEvent& ev : trace.events()) {
    sim_.loop().schedule_at(base + ev.at, [this, ev] {
      const NodeId target =
          dispatcher_ids_[next_dispatcher_rr_++ % dispatcher_ids_.size()];
      switch (ev.kind) {
        case TraceEvent::Kind::kSubscribe:
          ++subs_loaded_;
          sim_.inject(target, Envelope::of(ClientSubscribe{ev.sub}));
          break;
        case TraceEvent::Kind::kUnsubscribe:
          sim_.inject(target, Envelope::of(ClientUnsubscribe{ev.sub}));
          break;
        case TraceEvent::Kind::kPublish:
          losses_.on_published(now());
          sim_.inject(target, Envelope::of(ClientPublish{ev.msg}));
          break;
      }
    });
  }
}

// ---------------------------------------------------------------------------
// Publishing
// ---------------------------------------------------------------------------

void Deployment::set_rate(double msgs_per_sec) {
  rate_ = msgs_per_sec;
  ++publish_epoch_;
  if (rate_ > 0.0) schedule_publish();
}

void Deployment::schedule_publish() {
  const double gap = (1.0 / rate_) * rng_.uniform(0.9, 1.1);
  const std::uint64_t epoch = publish_epoch_;
  sim_.loop().schedule_after(gap, [this, epoch] {
    if (epoch != publish_epoch_) return;
    publish_one();
    schedule_publish();
  });
}

void Deployment::publish_one() {
  Message msg = msg_gen_->next();
  losses_.on_published(now());
  const NodeId target =
      dispatcher_ids_[next_dispatcher_rr_++ % dispatcher_ids_.size()];
  sim_.inject(target, Envelope::of(ClientPublish{std::move(msg)}));
}

void Deployment::run_for(double seconds) { sim_.run_for(seconds); }

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

std::size_t Deployment::backlog() const {
  std::size_t total = 0;
  for (NodeId id : matcher_ids_) {
    if (!sim_.alive(id)) continue;
    const auto* node = sim_.node_as<const MatcherNode>(id);
    if (node != nullptr) total += node->total_queued();
  }
  return total;
}

std::size_t Deployment::audit_invariants() {
  std::size_t violations = 0;
  // Segment coverage: the live matchers' segments must partition every
  // dimension's domain. Only meaningful at quiesce points with no crashed
  // matchers (a crash leaves its segment orphaned by design, Fig 10).
  const Range domain{0.0, config_.domain_length};
  for (std::size_t d = 0; d < config_.dims; ++d) {
    std::vector<Range> segments;
    for (NodeId id : matcher_ids_) {
      if (!sim_.alive(id)) continue;
      const auto* m = sim_.node_as<const MatcherNode>(id);
      if (m == nullptr) continue;
      const MatcherState* state = m->gossiper().self_state();
      if (state == nullptr || state->status == NodeStatus::kLeft ||
          state->status == NodeStatus::kLeaving) {
        continue;
      }
      segments.push_back(m->segment(static_cast<DimId>(d)));
    }
    violations += obs::audit_segment_partition("deployment", domain,
                                               std::move(segments));
  }
  return violations;
}

void Deployment::sample_loads() {
  for (NodeId id : matcher_ids_) {
    if (!sim_.alive(id)) continue;
    loads_.sample(id, now(), sim_.busy_seconds(id), sim_.cores(id));
  }
}

MatcherNode* Deployment::matcher(NodeId id) {
  return sim_.node_as<MatcherNode>(id);
}

DispatcherNode* Deployment::dispatcher(NodeId id) {
  return sim_.node_as<DispatcherNode>(id);
}

obs::MetricsSnapshot Deployment::cluster_snapshot() {
  obs::MetricsSnapshot snap = sim_.metrics_snapshot();
  for (NodeId id : dispatcher_ids_) {
    if (DispatcherNode* d = dispatcher(id)) {
      snap.merge(d->metrics().snapshot());
    }
  }
  for (NodeId id : matcher_ids_) {
    if (sim_.alive(id)) {
      if (MatcherNode* m = matcher(id)) snap.merge(m->metrics().snapshot());
    }
  }
  snap.merge(breakdown_.registry().snapshot());
  return snap;
}

// ---------------------------------------------------------------------------
// Topology changes
// ---------------------------------------------------------------------------

NodeId Deployment::add_matcher() {
  const NodeId id = next_matcher_id_++;
  auto node = std::make_unique<MatcherNode>(id, matcher_config());
  sim_.add_node(id, std::move(node), config_.cores);
  sim_.start(id);
  matcher_ids_.push_back(id);
  return id;
}

void Deployment::kill_matcher(NodeId id) { sim_.kill(id); }

void Deployment::leave_matcher(NodeId id) {
  sim_.inject(id, Envelope::of(LeaveRequest{}));
}

// ---------------------------------------------------------------------------
// Saturation probe
// ---------------------------------------------------------------------------

bool Deployment::stable_at(double rate, const ProbeOptions& options) {
  set_rate(rate);
  run_for(options.warmup);
  const std::size_t b0 = backlog();
  const std::uint64_t p0 = published();
  const std::uint64_t c0 = completed();
  auto snapshot_queues = [this](std::unordered_map<NodeId, double>& out) {
    out.clear();
    for (NodeId id : matcher_ids_) {
      if (!sim_.alive(id)) continue;
      if (const auto* node = sim_.node_as<MatcherNode>(id)) {
        out[id] = static_cast<double>(node->total_queued());
      }
    }
  };
  std::unordered_map<NodeId, double> q_start, q_mid, q_end;
  snapshot_queues(q_start);
  (void)responses_.window();  // reset the window stats
  run_for(0.5 * options.measure);
  snapshot_queues(q_mid);
  run_for(0.5 * options.measure);
  snapshot_queues(q_end);

  const std::size_t b1 = backlog();
  const double published_delta = static_cast<double>(published() - p0);
  const double completed_delta = static_cast<double>(completed() - c0);
  if (published_delta <= 0.0) return true;
  const double backlog_growth =
      static_cast<double>(b1) - static_cast<double>(b0);
  const bool queue_ok =
      backlog_growth <= options.backlog_frac * published_delta;
  const bool completion_ok =
      completed_delta >= options.completion_frac * published_delta;

  // A matcher whose queue keeps growing through both half-windows is
  // saturated: its messages' response time grows linearly even when the
  // aggregate counters look healthy (e.g. P2P's hot-spot matcher).
  bool sustained_ok = true;
  const double total_floor = std::max(
      64.0, options.sustained_total_frac * published_delta);
  for (const auto& [id, start] : q_start) {
    const auto mid_it = q_mid.find(id);
    const auto end_it = q_end.find(id);
    if (mid_it == q_mid.end() || end_it == q_end.end()) continue;
    const double grow1 = mid_it->second - start;
    const double grow2 = end_it->second - mid_it->second;
    if (grow1 > options.sustained_half_growth &&
        grow2 > options.sustained_half_growth &&
        end_it->second - start > total_floor) {
      sustained_ok = false;
      break;
    }
  }
  return queue_ok && completion_ok && sustained_ok;
}

void Deployment::drain(double max_seconds) {
  set_rate(0.0);
  const Timestamp deadline = now() + max_seconds;
  while (backlog() > 0 && now() < deadline) run_for(1.0);
  run_for(0.5);
}

double Deployment::find_saturation_rate(const ProbeOptions& options) {
  double rate = options.start_rate;
  double last_stable = 0.0;
  while (rate <= options.max_rate) {
    if (stable_at(rate, options)) {
      last_stable = rate;
      rate *= options.growth;
    } else {
      break;
    }
  }
  if (rate > options.max_rate) return last_stable;

  double lo = last_stable;
  double hi = rate;
  for (int i = 0; i < options.refine_steps; ++i) {
    drain();
    const double mid = 0.5 * (lo + hi);
    if (stable_at(mid, options)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  drain();
  return lo;
}

}  // namespace bluedove
