#pragma once
// Experiment harness: builds a complete pub/sub deployment (BlueDove, the
// P2P baseline, or the full-replication baseline) on the discrete-event
// simulator, loads the paper's workload, and drives it — steady rates, rate
// ladders, saturation probes, matcher joins/leaves/crashes. Every figure
// bench in bench/ is a thin driver over this class.

#include <functional>
#include <memory>
#include <vector>

#include "attr/schema.h"
#include "baseline/full_replication.h"
#include "baseline/single_dim_partition.h"
#include "metrics/load_monitor.h"
#include "metrics/loss_tracker.h"
#include "metrics/response_tracker.h"
#include "node/dispatcher_node.h"
#include "node/matcher_node.h"
#include "obs/trace.h"
#include "sim/sim_cluster.h"
#include "workload/generators.h"
#include "workload/trace.h"

namespace bluedove {

enum class SystemKind { kBlueDove, kP2P, kFullReplication };
const char* to_string(SystemKind kind);

struct ExperimentConfig {
  SystemKind system = SystemKind::kBlueDove;

  // Schema / workload (paper §IV-B defaults, subscription count scaled to
  // simulation size; benches note the scaling).
  std::size_t dims = 4;
  double domain_length = 1000.0;
  std::size_t subscriptions = 10000;
  double predicate_width = 250.0;
  double sub_sigma = 250.0;
  std::size_t msg_skewed_dims = 0;
  double msg_sigma = 250.0;
  /// Probability a generated subscription reuses a hot template (Zipf over
  /// the pool) instead of being drawn fresh; 0 keeps the generator stream
  /// byte-identical to earlier seeds.
  double duplicate_skew = 0.0;
  /// Per-bound jitter applied to reused templates (domain units).
  double duplicate_jitter = 0.0;

  // Cluster.
  std::size_t matchers = 20;
  std::size_t dispatchers = 2;
  int cores = 4;

  // BlueDove knobs.
  PolicyKind policy = PolicyKind::kAdaptive;
  std::size_t searchable_dims = 0;  ///< 0 = all dims (Fig 11a varies this)
  MPartition::Options mpartition;

  // Matching engine / mode.
  IndexKind index_kind = IndexKind::kLinearScan;
  /// Requests one matcher core drains from a dimension queue per service
  /// (batched probe; 1 = strict per-message service).
  int match_batch = 1;
  /// Full matching computes real match sets and deliveries; cost-only mode
  /// charges identical work but skips the match computation, making
  /// saturation probes fast. Response-time dynamics are the same.
  bool full_matching = false;
  /// Subscription covering (DESIGN §15): cluster near-duplicate cuboids
  /// behind covering representatives so the indexes scale with distinct
  /// predicate shapes; delivery expands representatives back to members
  /// through exact residual filters.
  bool cover = false;
  /// False-positive volume budget for covering merges (see CoverConfig).
  double cover_budget = 0.05;

  // Infrastructure timing.
  double load_report_interval = 1.0;
  double table_pull_interval = 10.0;
  GossipConfig gossip;
  bool auto_scale = false;
  /// Reliable delivery (§VI message persistence): dispatchers retain and
  /// re-dispatch unacknowledged messages, eliminating the failure-window
  /// loss of Fig 10 at the cost of possible duplicates.
  bool reliable_delivery = false;
  /// Cut joiner segments at the stored-predicate median instead of the
  /// midpoint (ablation; see MatcherConfig::SplitPolicy).
  bool median_split = false;

  std::uint64_t seed = 1;
  sim::SimConfig sim;

  /// Fraction of publications traced through the pipeline (obs/trace.h).
  /// 0 = off (default; one branch per publish), 1 = every message. Traced
  /// messages feed Deployment::breakdown() with per-stage latency.
  double trace_sample_rate = 0.0;
};

class Deployment {
 public:
  explicit Deployment(ExperimentConfig config);
  ~Deployment();

  /// Builds the cluster, starts all nodes, loads the configured
  /// subscriptions and lets the control plane settle.
  void start();

  // --- workload drive -------------------------------------------------------
  /// Publication rate in msgs/sec (0 stops publishing). Arrivals are evenly
  /// spaced with +-10% jitter.
  void set_rate(double msgs_per_sec);
  double rate() const { return rate_; }
  void run_for(double seconds);
  Timestamp now() const { return sim_.now(); }

  /// Injects `n` additional subscriptions (Fig 6b grows the subscription
  /// population at a fixed message rate).
  void add_subscriptions(std::size_t n);
  std::size_t subscriptions_loaded() const { return subs_loaded_; }

  /// Schedules every event of a recorded trace, offset from now(); drive
  /// with run_for(trace.duration() + slack).
  void replay(const WorkloadTrace& trace);

  // --- metrics ---------------------------------------------------------------
  ResponseTracker& responses() { return responses_; }
  LossTracker& losses() { return losses_; }
  LoadMonitor& loads() { return loads_; }
  /// Feeds the LoadMonitor one busy-time sample per live matcher.
  void sample_loads();
  /// Sum of queued messages across live matchers.
  std::size_t backlog() const;
  std::uint64_t published() const { return losses_.published_total(); }
  std::uint64_t completed() const { return losses_.completed_total(); }
  /// Per-stage latency breakdown of the traced messages (dispatch / queue /
  /// match / deliver); empty unless trace_sample_rate > 0.
  const obs::StageBreakdown& breakdown() const { return breakdown_; }
  /// Cluster-wide metrics: every node registry, the sim substrate stats and
  /// the trace breakdown merged into one snapshot (the JSON/Prometheus
  /// exporters in obs/export.h take it from here).
  obs::MetricsSnapshot cluster_snapshot();
  /// Determinism digest of the sim's delivered event stream (0 unless
  /// config.sim.digest was set before start()).
  std::uint64_t digest() const { return sim_.digest(); }
  /// Quiesce-point invariant sweep (obs/audit.h): checks that the live
  /// matchers' segment tables partition every dimension's domain. Reports
  /// each violation under kSegment and returns the count. Call only when
  /// the invariant is expected to hold — after settle, joins and graceful
  /// leaves, but not after kill_matcher (a crash orphans its segment until
  /// an operator repairs the partition, per the paper's Fig 10 design).
  std::size_t audit_invariants();

  // --- topology --------------------------------------------------------------
  const std::vector<NodeId>& matcher_ids() const { return matcher_ids_; }
  const std::vector<NodeId>& dispatcher_ids() const { return dispatcher_ids_; }
  MatcherNode* matcher(NodeId id);
  DispatcherNode* dispatcher(NodeId id);
  sim::SimCluster& sim() { return sim_; }
  const ExperimentConfig& config() const { return config_; }

  /// Elastic join (paper §III-C): boots a fresh matcher that contacts a
  /// dispatcher, receives split segments and subscriptions, and becomes
  /// live once gossip propagates. Returns its id.
  NodeId add_matcher();
  /// Crash-stop (Fig 10).
  void kill_matcher(NodeId id);
  /// Graceful leave: segments and subscriptions merge to neighbours.
  void leave_matcher(NodeId id);

  // --- saturation probe (paper §IV-B methodology) ----------------------------
  struct ProbeOptions {
    double start_rate = 500.0;
    double growth = 1.6;        ///< ladder multiplier while stable
    double warmup = 3.0;        ///< settle seconds per step
    double measure = 8.0;       ///< measurement seconds per step
    double max_rate = 2.0e6;
    int refine_steps = 3;       ///< bisection steps after bracketing
    /// Stability thresholds: a step is saturated when backlog growth or
    /// uncompleted traffic exceeds these fractions of the step's traffic,
    /// or when any single matcher's queue grows *sustainedly* through both
    /// halves of the window (the paper declares saturation on any linear
    /// response-time growth, which a single overloaded hot-spot matcher
    /// already causes; transient queue oscillation does not count).
    double backlog_frac = 0.02;
    double completion_frac = 0.97;
    double sustained_half_growth = 8.0;   ///< min growth per half-window
    double sustained_total_frac = 0.005;  ///< min total growth vs traffic
  };
  /// Ramps the publication rate until the deployment saturates (queue
  /// growth / response-time blowup), then bisects. Returns the highest
  /// sustainable rate found.
  double find_saturation_rate(const ProbeOptions& options);
  double find_saturation_rate() { return find_saturation_rate(ProbeOptions{}); }

  /// One ladder step at `rate`; returns true when the system kept up.
  bool stable_at(double rate, const ProbeOptions& options);
  bool stable_at(double rate) { return stable_at(rate, ProbeOptions{}); }

 private:
  void build();
  MatcherConfig matcher_config() const;
  DispatcherConfig dispatcher_config() const;
  std::shared_ptr<const PartitionStrategy> make_strategy() const;
  void publish_one();
  void schedule_publish();
  void drain(double max_seconds = 120.0);
  void load_subscriptions(std::size_t n);

  ExperimentConfig config_;
  AttributeSchema schema_;
  sim::SimCluster sim_;
  Rng rng_;

  std::vector<NodeId> matcher_ids_;
  std::vector<NodeId> dispatcher_ids_;
  NodeId metrics_sink_id_ = 0;
  NodeId delivery_sink_id_ = 0;
  NodeId next_matcher_id_ = 0;
  std::size_t next_dispatcher_rr_ = 0;

  std::unique_ptr<SubscriptionGenerator> sub_gen_;
  std::unique_ptr<MessageGenerator> msg_gen_;
  std::size_t subs_loaded_ = 0;

  double rate_ = 0.0;
  std::uint64_t publish_epoch_ = 0;  ///< invalidates scheduled publishes

  ResponseTracker responses_;
  LossTracker losses_;
  LoadMonitor loads_;
  obs::StageBreakdown breakdown_;
  std::unordered_set<MessageId> completed_ids_;  ///< dedup (reliable mode)

  bool started_ = false;

 public:
  /// Optional hook invoked for every Delivery reaching the delivery sink
  /// (full-matching mode only).
  std::function<void(const Delivery&, Timestamp)> on_delivery;
};

}  // namespace bluedove
