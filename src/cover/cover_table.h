#pragma once
// Subscription covering (ROADMAP item 4): aggregate near-duplicate
// hyper-cuboids into a compressed set of covering representatives so the
// per-dimension indexes scale with the number of *distinct* predicate
// shapes instead of raw subscriptions ("Towards Scalable Subscription
// Aggregation...", PAPERS.md).
//
// The table sits between subscription registration and the index engines.
// Arriving cuboids are clustered by a quantized geometry key (centre cell
// per dimension); within a cluster a cuboid is admitted when
//
//   (a) it is contained in the group's bounding box (exact cover — free), or
//   (b) widening the box to include it keeps the box's false-positive
//       volume upper bound within `fp_volume_budget`:
//         vol(bbox') - covered_lb' <= budget * vol(bbox')
//       where covered_lb is a conservative lower bound on the volume the
//       members truly cover (budget 0 therefore admits only duplicates and
//       containment).
//
// Only the group representative (the bounding box) is inserted into the
// SubscriptionStore / FlatBucketIndex hot path; a representative→members
// expansion table — SoA member arena (parallel id/subscriber columns plus
// member-major lo/hi range rows), free-list recycled — is consulted at
// delivery time to produce concrete subscriber lists. Because a widened box
// can admit points no member wants, every expansion re-checks the exact
// per-member residual predicate unless the group is `uniform` (all members
// byte-equal to the box), so delivered results stay byte-identical to the
// uncovered system.
//
// Concurrency / epochs: the table is owned by the matcher's node thread;
// every mutation and every expansion happens there, so the member arena
// needs no internal locking. What leaks outside the node thread are the
// representative Subscriptions themselves, which live in the shared
// SubscriptionStore arena and are protected by the existing PR-4
// epoch-guard/limbo machinery exactly like raw subscriptions. Representative
// ids carry a per-slot generation (bit 63 flags a representative, then
// 35 generation bits over 28 slot bits), so a hit surfaced from a stale
// index snapshot can never alias a recycled group: expand() drops ids whose
// generation no longer matches.
//
// Singleton pass-through: a group with one member indexes the raw
// subscription itself (raw id, raw box). With duplicate_skew=0 workloads the
// index contents are therefore byte-identical to the uncovered system and
// the only per-hit overhead on the delivery path is one bit test.

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "attr/subscription.h"
#include "common/affinity.h"
#include "attr/value.h"
#include "common/types.h"
#include "index/subscription_index.h"

namespace bluedove {

struct CoverConfig {
  bool enabled = false;

  /// Maximum fraction of a representative's volume that may be
  /// (upper-bound) false positive. 0 admits only exact duplicates and
  /// containment; the default trades a sliver of residual-filter work for
  /// much deeper merging of jittered near-duplicates.
  double fp_volume_budget = 0.05;

  /// Minimum overlap a non-contained candidate must have with the widened
  /// box (intersection-with-current-box volume over widened-box volume)
  /// before a merge is considered. The FP-volume bound alone would happily
  /// chain *distinct* subscriptions whose union happens to be exactly
  /// covered (two cuboids offset along one dimension have zero FP volume);
  /// such merges compress nothing worth having and bill residual-filter
  /// work on every delivery. Jittered near-duplicates sit well above this
  /// floor; distinct hot-spot neighbours well below it.
  double min_overlap = 0.5;

  /// Clustering quantum as a fraction of each dimension's domain width:
  /// cuboids whose centres fall in the same quantized cell are merge
  /// candidates for the same groups.
  double quantum_frac = 1.0 / 16.0;

  /// How many of a cell's most recent groups an arriving cuboid probes
  /// before starting a new group (bounds per-insert work).
  std::size_t max_chain = 8;
};

/// One covering table per dimension set. Not thread-safe: node thread only
/// (see file comment for why that is the whole concurrency story).
class CoverTable {
 public:
  /// Bit 63 of a SubscriptionId flags a representative. Raw subscription
  /// ids must stay below 2^63 for covering; ids that violate this are
  /// force-grouped (never passed through) so delivery still resolves them.
  static constexpr SubscriptionId kRepBit = 1ull << 63;
  static bool is_rep(SubscriptionId id) { return (id & kRepBit) != 0; }

  /// Index mutation the caller must apply to the dimension index to keep it
  /// in sync (at most one erase plus one insert per table mutation).
  struct IndexOp {
    bool erase = false;
    SubscriptionId erase_id = 0;
    bool insert = false;
    Subscription insert_sub;
  };

  enum class AddKind {
    kNoop,         ///< duplicate id — nothing changed
    kNewGroup,     ///< started a new group (insert: raw pass-through or rep)
    kAbsorbed,     ///< contained in an existing box (no widening)
    kWidened,      ///< merged by widening an existing box within budget
    kPassthrough,  ///< dimension mismatch — indexed raw, never grouped
  };

  struct AddResult : IndexOp {
    AddKind kind = AddKind::kNoop;
  };

  struct RemoveResult : IndexOp {
    bool found = false;
  };

  struct ExpandStats {
    std::uint32_t emitted = 0;
    std::uint32_t checks = 0;  ///< residual member predicates evaluated
    std::uint32_t rejects = 0;
  };

  /// `salt` distinguishes rep ids minted by different tables that feed the
  /// same SubscriptionStore (one table per dimension on a matcher). Without
  /// it, two dimensions' tables would mint the same id for (slot, gen) and
  /// the store's by-id dedup would alias one dimension's representative box
  /// to another's, silently dropping matches.
  CoverTable(CoverConfig config, std::vector<Range> domains,
             std::uint32_t salt = 0);

  /// Registers a raw subscription. The returned ops keep the caller's index
  /// holding exactly one entry per group plus the pass-throughs.
  BD_NODE_THREAD AddResult add(const Subscription& raw);

  /// Unregisters a raw subscription. A group whose last member leaves has
  /// its representative erased and its slot recycled (generation bumped).
  /// Boxes never shrink on member removal; the residual filters keep
  /// correctness and the admission bound is re-tightened conservatively.
  BD_NODE_THREAD RemoveResult remove(SubscriptionId id);

  bool contains(SubscriptionId id) const {
    return member_of_.count(id) != 0 || passthrough_.count(id) != 0;
  }

  /// Delivery-time expansion: appends one MatchHit per member of `rep_id`
  /// whose exact predicate accepts `values` (all members for uniform
  /// groups). Returns false for stale ids (dead or recycled group), which
  /// callers treat as an empty expansion.
  BD_NODE_THREAD bool expand(SubscriptionId rep_id,
                             const std::vector<Value>& values,
                             std::vector<MatchHit>& out,
                             ExpandStats* stats = nullptr);

  /// Brute-force oracle over every raw member and pass-through: the
  /// differential reference the kCover audit and tests compare expanded
  /// results against.
  void collect_matches(const std::vector<Value>& values,
                       std::vector<MatchHit>& out) const;

  /// Visits every raw member (reconstructed from the arena) and
  /// pass-through, in deterministic slot order. Segment split/merge hands
  /// over raw subscriptions so cover sets re-partition cleanly on the
  /// receiving matcher.
  void for_each_member(
      const std::function<void(const Subscription&)>& fn) const;

  // --- introspection --------------------------------------------------------
  std::size_t raw_count() const { return member_of_.size() + passthrough_.size(); }
  std::size_t group_count() const { return live_groups_; }
  /// Entries the caller's index holds on our behalf (groups + pass-throughs).
  std::size_t indexed_count() const { return live_groups_ + passthrough_.size(); }
  /// Monotonic mutation stamp: bumps on every add/remove, so callers can
  /// tell whether the table changed between a probe and its completion
  /// (gates the differential audit).
  std::uint64_t mutations() const { return mutations_; }

  const CoverConfig& config() const { return config_; }

 private:
  struct Group {
    std::uint64_t key = 0;
    std::uint64_t generation = 1;
    std::vector<Range> bbox;
    std::vector<std::uint32_t> members;  ///< arena slots
    /// Conservative lower bound on the volume the members truly cover.
    double covered_lb = 0.0;
    bool live = false;
    bool uniform = true;  ///< all members byte-equal to bbox → skip residuals
    /// Singleton pass-through: the index holds the sole member's raw
    /// subscription instead of a representative.
    bool indexed_raw = false;
    SubscriptionId raw_id = 0;  ///< valid while indexed_raw
  };

  struct MemberRef {
    std::uint32_t group = 0;
    std::uint32_t pos = 0;  ///< position in Group::members
  };

  SubscriptionId rep_id_of(std::uint32_t slot) const {
    return kRepBit |
           (static_cast<SubscriptionId>(salt_ & kSaltMask) << kSaltShift) |
           ((groups_[slot].generation & kGenMask) << kSlotBits) |
           static_cast<SubscriptionId>(slot);
  }
  Subscription rep_subscription(std::uint32_t slot) const;

  std::uint64_t key_of(const std::vector<Range>& ranges) const;
  double volume(const std::vector<Range>& ranges) const;
  bool box_covers(const std::vector<Range>& bbox,
                  const std::vector<Range>& ranges) const;

  std::uint32_t alloc_member(const Subscription& raw);
  void free_member(std::uint32_t slot);
  void free_group(std::uint32_t slot);
  /// Recomputes covered_lb (max single-member volume — a valid lower bound)
  /// and the uniform flag after a member left.
  void retighten(Group& g);

  // Rep id layout: [63] rep flag | [56..62] table salt | [28..55] generation
  // | [0..27] slot.
  static constexpr int kSlotBits = 28;
  static constexpr SubscriptionId kSlotMask = (1ull << kSlotBits) - 1;
  static constexpr std::uint64_t kGenMask = (1ull << 28) - 1;
  static constexpr int kSaltShift = 56;
  static constexpr std::uint32_t kSaltMask = (1u << 7) - 1;

  CoverConfig config_;
  std::vector<Range> domains_;
  std::uint32_t salt_ = 0;
  std::size_t k_ = 0;

  // Member arena, SoA: parallel columns for id/subscriber plus member-major
  // range rows (member slot m owns m_lo_[m*k .. m*k+k)), so the residual
  // filter walks one contiguous strip per candidate.
  std::vector<SubscriptionId> m_id_;
  std::vector<SubscriberId> m_subscriber_;
  std::vector<Value> m_lo_;
  std::vector<Value> m_hi_;
  std::vector<std::uint32_t> free_members_;

  std::vector<Group> groups_;
  std::vector<std::uint32_t> free_groups_;
  std::size_t live_groups_ = 0;

  /// Quantized geometry key → group slots (newest last; admission probes
  /// the most recent config_.max_chain).
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> chains_;
  std::unordered_map<SubscriptionId, MemberRef> member_of_;
  /// Dimension-mismatched subscriptions indexed raw (kept whole so the
  /// oracle can still evaluate them).
  std::unordered_map<SubscriptionId, Subscription> passthrough_;

  std::uint64_t mutations_ = 0;
};

}  // namespace bluedove
