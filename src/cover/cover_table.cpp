#include "cover/cover_table.h"

#include <algorithm>
#include <cmath>

namespace bluedove {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

CoverTable::CoverTable(CoverConfig config, std::vector<Range> domains,
                       std::uint32_t salt)
    : config_(config),
      domains_(std::move(domains)),
      salt_(salt),
      k_(domains_.size()) {}

std::uint64_t CoverTable::key_of(const std::vector<Range>& ranges) const {
  std::uint64_t h = kFnvOffset;
  for (std::size_t d = 0; d < k_; ++d) {
    const Range& dom = domains_[d];
    const double quantum =
        std::max(config_.quantum_frac * dom.width(), 1e-9);
    const double center = 0.5 * (ranges[d].lo + ranges[d].hi);
    const auto cell =
        static_cast<std::int64_t>(std::floor((center - dom.lo) / quantum));
    h = mix(h, static_cast<std::uint64_t>(cell));
  }
  return h;
}

double CoverTable::volume(const std::vector<Range>& ranges) const {
  double v = 1.0;
  for (const Range& r : ranges) v *= r.width();
  return v;
}

bool CoverTable::box_covers(const std::vector<Range>& bbox,
                            const std::vector<Range>& ranges) const {
  for (std::size_t d = 0; d < k_; ++d) {
    if (!bbox[d].covers(ranges[d])) return false;
  }
  return true;
}

std::uint32_t CoverTable::alloc_member(const Subscription& raw) {
  std::uint32_t slot;
  if (!free_members_.empty()) {
    slot = free_members_.back();
    free_members_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(m_id_.size());
    m_id_.push_back(0);
    m_subscriber_.push_back(0);
    m_lo_.resize(m_lo_.size() + k_);
    m_hi_.resize(m_hi_.size() + k_);
  }
  m_id_[slot] = raw.id;
  m_subscriber_[slot] = raw.subscriber;
  for (std::size_t d = 0; d < k_; ++d) {
    m_lo_[slot * k_ + d] = raw.ranges[d].lo;
    m_hi_[slot * k_ + d] = raw.ranges[d].hi;
  }
  return slot;
}

void CoverTable::free_member(std::uint32_t slot) {
  free_members_.push_back(slot);
}

void CoverTable::free_group(std::uint32_t slot) {
  Group& g = groups_[slot];
  auto it = chains_.find(g.key);
  if (it != chains_.end()) {
    auto& chain = it->second;
    chain.erase(std::remove(chain.begin(), chain.end(), slot), chain.end());
    if (chain.empty()) chains_.erase(it);
  }
  g.live = false;
  ++g.generation;  // stale snapshot hits with the old rep id now miss
  g.members.clear();
  g.bbox.clear();
  free_groups_.push_back(slot);
  --live_groups_;
}

void CoverTable::retighten(Group& g) {
  double max_vol = 0.0;
  bool uniform = true;
  std::vector<Range> mr(k_);
  for (const std::uint32_t ms : g.members) {
    double v = 1.0;
    for (std::size_t d = 0; d < k_; ++d) {
      mr[d] = Range{m_lo_[ms * k_ + d], m_hi_[ms * k_ + d]};
      v *= mr[d].width();
    }
    max_vol = std::max(max_vol, v);
    uniform = uniform && mr == g.bbox;
  }
  g.covered_lb = max_vol;
  g.uniform = uniform;
}

Subscription CoverTable::rep_subscription(std::uint32_t slot) const {
  Subscription rep;
  rep.id = rep_id_of(slot);
  rep.subscriber = 0;  // never delivered as-is; expansion supplies members
  rep.ranges = groups_[slot].bbox;
  return rep;
}

CoverTable::AddResult CoverTable::add(const Subscription& raw) {
  AddResult res;
  if (contains(raw.id)) return res;  // kNoop

  if (raw.ranges.size() != k_) {
    // Shape the table can't box: index it raw, remember it whole for the
    // oracle and for handover.
    passthrough_.emplace(raw.id, raw);
    ++mutations_;
    res.kind = AddKind::kPassthrough;
    res.insert = true;
    res.insert_sub = raw;
    return res;
  }

  const std::uint64_t key = key_of(raw.ranges);
  const double raw_vol = volume(raw.ranges);

  std::uint32_t target = UINT32_MAX;
  bool contained = false;
  double merged_covered_lb = 0.0;
  std::vector<Range> merged_bbox;
  auto chain_it = chains_.find(key);
  if (chain_it != chains_.end()) {
    const auto& chain = chain_it->second;
    const std::size_t probes = std::min(config_.max_chain, chain.size());
    for (std::size_t i = 0; i < probes; ++i) {
      const std::uint32_t slot = chain[chain.size() - 1 - i];
      const Group& g = groups_[slot];
      if (box_covers(g.bbox, raw.ranges)) {
        target = slot;
        contained = true;
        break;
      }
      if (target != UINT32_MAX) continue;  // already have a widening option
      std::vector<Range> nb(k_);
      std::vector<Range> inter(k_);
      double inter_vol = 1.0;
      for (std::size_t d = 0; d < k_; ++d) {
        nb[d] = Range{std::min(g.bbox[d].lo, raw.ranges[d].lo),
                      std::max(g.bbox[d].hi, raw.ranges[d].hi)};
        inter_vol *= g.bbox[d].intersect(raw.ranges[d]).width();
      }
      const double covered_lb = g.covered_lb + raw_vol - inter_vol;
      const double nb_vol = volume(nb);
      if (inter_vol >= config_.min_overlap * nb_vol &&
          nb_vol - covered_lb <= config_.fp_volume_budget * nb_vol) {
        target = slot;
        merged_covered_lb = covered_lb;
        merged_bbox = std::move(nb);
      }
    }
  }

  if (target == UINT32_MAX) {
    // New group. A raw id that already uses the representative bit would be
    // ambiguous on the delivery path, so such ids are represented from the
    // start instead of passed through.
    std::uint32_t slot;
    if (!free_groups_.empty()) {
      slot = free_groups_.back();
      free_groups_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(groups_.size());
      groups_.emplace_back();
    }
    Group& g = groups_[slot];
    g.key = key;
    g.live = true;
    g.bbox = raw.ranges;
    g.covered_lb = raw_vol;
    g.uniform = true;
    g.indexed_raw = !is_rep(raw.id);
    g.raw_id = raw.id;
    const std::uint32_t ms = alloc_member(raw);
    member_of_[raw.id] = MemberRef{slot, 0};
    g.members.push_back(ms);
    chains_[key].push_back(slot);
    ++live_groups_;
    ++mutations_;
    res.kind = AddKind::kNewGroup;
    res.insert = true;
    res.insert_sub = g.indexed_raw ? raw : rep_subscription(slot);
    return res;
  }

  Group& g = groups_[target];
  const std::uint32_t ms = alloc_member(raw);
  member_of_[raw.id] =
      MemberRef{target, static_cast<std::uint32_t>(g.members.size())};
  g.members.push_back(ms);
  ++mutations_;
  if (contained) {
    g.uniform = g.uniform && raw.ranges == g.bbox;
    res.kind = AddKind::kAbsorbed;
  } else {
    g.bbox = std::move(merged_bbox);
    g.covered_lb = merged_covered_lb;
    g.uniform = false;
    res.kind = AddKind::kWidened;
  }
  if (g.indexed_raw) {
    // Second member: retire the pass-through entry, index the box.
    res.erase = true;
    res.erase_id = g.raw_id;
    res.insert = true;
    res.insert_sub = rep_subscription(target);
    g.indexed_raw = false;
  } else if (res.kind == AddKind::kWidened) {
    // Re-insert the same representative id with the wider box.
    res.erase = true;
    res.erase_id = rep_id_of(target);
    res.insert = true;
    res.insert_sub = rep_subscription(target);
  }
  return res;
}

CoverTable::RemoveResult CoverTable::remove(SubscriptionId id) {
  RemoveResult res;
  auto pit = passthrough_.find(id);
  if (pit != passthrough_.end()) {
    passthrough_.erase(pit);
    ++mutations_;
    res.found = true;
    res.erase = true;
    res.erase_id = id;
    return res;
  }
  auto it = member_of_.find(id);
  if (it == member_of_.end()) return res;
  const MemberRef ref = it->second;
  Group& g = groups_[ref.group];
  const std::uint32_t ms = g.members[ref.pos];
  const std::uint32_t last = static_cast<std::uint32_t>(g.members.size() - 1);
  if (ref.pos != last) {
    g.members[ref.pos] = g.members[last];
    member_of_[m_id_[g.members[ref.pos]]].pos = ref.pos;
  }
  g.members.pop_back();
  free_member(ms);
  member_of_.erase(it);
  ++mutations_;
  res.found = true;
  if (g.members.empty()) {
    res.erase = true;
    res.erase_id = g.indexed_raw ? g.raw_id : rep_id_of(ref.group);
    free_group(ref.group);
  } else {
    retighten(g);
  }
  return res;
}

bool CoverTable::expand(SubscriptionId rep_id,
                        const std::vector<Value>& values,
                        std::vector<MatchHit>& out, ExpandStats* stats) {
  const auto slot = static_cast<std::uint32_t>(rep_id & kSlotMask);
  if (slot >= groups_.size()) return false;
  const Group& g = groups_[slot];
  if (!g.live || rep_id_of(slot) != rep_id) return false;  // stale snapshot
  if (values.size() != k_) return true;  // mirrors Subscription::matches
  for (const std::uint32_t ms : g.members) {
    if (!g.uniform) {
      if (stats != nullptr) ++stats->checks;
      bool ok = true;
      const Value* lo = &m_lo_[ms * k_];
      const Value* hi = &m_hi_[ms * k_];
      for (std::size_t d = 0; d < k_; ++d) {
        if (!(lo[d] <= values[d] && values[d] < hi[d])) {
          ok = false;
          break;
        }
      }
      if (!ok) {
        if (stats != nullptr) ++stats->rejects;
        continue;
      }
    }
    out.push_back(MatchHit{m_id_[ms], m_subscriber_[ms]});
    if (stats != nullptr) ++stats->emitted;
  }
  return true;
}

void CoverTable::collect_matches(const std::vector<Value>& values,
                                 std::vector<MatchHit>& out) const {
  if (values.size() == k_) {
    for (const Group& g : groups_) {
      if (!g.live) continue;
      for (const std::uint32_t ms : g.members) {
        bool ok = true;
        for (std::size_t d = 0; d < k_; ++d) {
          const Value v = values[d];
          if (!(m_lo_[ms * k_ + d] <= v && v < m_hi_[ms * k_ + d])) {
            ok = false;
            break;
          }
        }
        if (ok) out.push_back(MatchHit{m_id_[ms], m_subscriber_[ms]});
      }
    }
  }
  for (const auto& [id, sub] : passthrough_) {
    if (sub.ranges.size() != values.size()) continue;
    bool ok = true;
    for (std::size_t d = 0; d < sub.ranges.size(); ++d) {
      if (!sub.ranges[d].contains(values[d])) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(MatchHit{sub.id, sub.subscriber});
  }
}

void CoverTable::for_each_member(
    const std::function<void(const Subscription&)>& fn) const {
  Subscription sub;
  sub.ranges.resize(k_);
  for (const Group& g : groups_) {
    if (!g.live) continue;
    for (const std::uint32_t ms : g.members) {
      sub.id = m_id_[ms];
      sub.subscriber = m_subscriber_[ms];
      for (std::size_t d = 0; d < k_; ++d) {
        sub.ranges[d] = Range{m_lo_[ms * k_ + d], m_hi_[ms * k_ + d]};
      }
      fn(sub);
    }
  }
  for (const auto& [id, s] : passthrough_) fn(s);
}

}  // namespace bluedove
