#pragma once
// Subscription and message generators reproducing the paper's workload
// (§IV-B): k dimensions of length 1000; subscriptions are conjunctions of
// width-250 range predicates whose centres follow a cropped normal with
// sigma 250 (hot-spot density 2.7x average), hot spots spread evenly across
// dimensions; message values are uniform, optionally adversely skewed on
// the first j dimensions (Fig 11c).

#include <vector>

#include "attr/message.h"
#include "attr/schema.h"
#include "attr/subscription.h"
#include "common/rng.h"
#include "workload/distributions.h"

namespace bluedove {

struct SubscriptionWorkload {
  AttributeSchema schema;
  double predicate_width = 250.0;
  double sigma = 250.0;  ///< cropped-normal stdev of predicate centres

  /// Template-reuse skew, for covering workloads (ISSUE 8): with this
  /// probability the next subscription re-uses one of `duplicate_templates`
  /// pre-drawn template cuboids — template rank Zipf(duplicate_zipf_s)
  /// distributed, each bound jittered by U(-duplicate_jitter,
  /// +duplicate_jitter) and clamped to the domain. 0 (the default) draws no
  /// extra randomness anywhere, keeping existing figure runs byte-identical.
  double duplicate_skew = 0.0;
  std::size_t duplicate_templates = 1024;
  double duplicate_zipf_s = 1.2;
  double duplicate_jitter = 0.0;
};

class SubscriptionGenerator {
 public:
  SubscriptionGenerator(SubscriptionWorkload workload, std::uint64_t seed);

  /// Next subscription; ids are sequential from 1, subscriber == id by
  /// default (callers may overwrite).
  Subscription next();

  std::vector<Subscription> batch(std::size_t n);

  const SubscriptionWorkload& workload() const { return workload_; }

 private:
  Subscription fresh();

  SubscriptionWorkload workload_;
  std::vector<CroppedNormal> centers_;  ///< one per dimension
  Rng rng_;
  SubscriptionId next_id_ = 1;
  /// Template pool + Zipf rank CDF; populated only when duplicate_skew > 0
  /// (from an independent rng, so the main stream stays untouched).
  std::vector<std::vector<Range>> templates_;
  std::vector<double> zipf_cdf_;
};

struct MessageWorkload {
  AttributeSchema schema;
  /// Values on the first `skewed_dims` dimensions follow the subscriptions'
  /// cropped normal (adverse skew); the rest are uniform.
  std::size_t skewed_dims = 0;
  double sigma = 250.0;  ///< sigma of the adverse skew
  std::size_t payload_bytes = 0;
};

class MessageGenerator {
 public:
  MessageGenerator(MessageWorkload workload, std::uint64_t seed);

  Message next();

  const MessageWorkload& workload() const { return workload_; }

 private:
  MessageWorkload workload_;
  std::vector<CroppedNormal> skewed_;
  std::vector<UniformDist> uniform_;
  Rng rng_;
  MessageId next_id_ = 1;
};

}  // namespace bluedove
