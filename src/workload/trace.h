#pragma once
// Workload traces: a timestamped sequence of subscribe / unsubscribe /
// publish events that can be serialized, stored, and replayed against any
// deployment. Lets experiments run identical workloads across systems and
// configurations, and lets users capture production-like traces for
// regression benchmarking.

#include <string>
#include <vector>

#include "attr/message.h"
#include "attr/subscription.h"
#include "common/serde.h"
#include "common/types.h"

namespace bluedove {

struct TraceEvent {
  enum class Kind : std::uint8_t {
    kSubscribe = 0,
    kUnsubscribe = 1,
    kPublish = 2,
  };

  Timestamp at = 0.0;  ///< seconds from trace start
  Kind kind = Kind::kPublish;
  Subscription sub;  ///< kSubscribe / kUnsubscribe
  Message msg;       ///< kPublish
};

class WorkloadTrace {
 public:
  void subscribe(Timestamp at, Subscription sub);
  void unsubscribe(Timestamp at, Subscription sub);
  void publish(Timestamp at, Message msg);

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  /// Timestamp of the last event (0 for an empty trace).
  Timestamp duration() const;

  /// Sorts events by time (stable), for traces assembled out of order.
  void sort();

  std::vector<std::uint8_t> serialize() const;
  static WorkloadTrace deserialize(const std::vector<std::uint8_t>& bytes,
                                   bool* ok = nullptr);

  bool save(const std::string& path) const;
  static WorkloadTrace load(const std::string& path, bool* ok = nullptr);

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace bluedove
