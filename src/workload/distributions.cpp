#include "workload/distributions.h"

namespace bluedove {

double CroppedNormal::sample(Rng& rng) const {
  if (sigma_ <= 0.0) return mean_;
  // Rejection sampling keeps the in-domain density proportional to the
  // normal density (no boundary pile-up, unlike clamping). With sigma up to
  // the domain width the acceptance rate stays above ~35%, but guard with a
  // bounded retry and fall back to uniform for pathological parameters.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double v = mean_ + sigma_ * rng.next_gaussian();
    if (domain_.contains(v)) return v;
  }
  return rng.uniform(domain_.lo, domain_.hi);
}

double hotspot_mean(Range domain, std::size_t dim, std::size_t k) {
  const double frac =
      static_cast<double>(dim + 1) / static_cast<double>(k + 1);
  return domain.lo + frac * domain.width();
}

}  // namespace bluedove
