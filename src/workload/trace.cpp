#include "workload/trace.h"

#include <algorithm>
#include <cstdio>

namespace bluedove {

namespace {
constexpr std::uint32_t kMagic = 0x42445452;  // "BDTR"
}

void WorkloadTrace::subscribe(Timestamp at, Subscription sub) {
  TraceEvent ev;
  ev.at = at;
  ev.kind = TraceEvent::Kind::kSubscribe;
  ev.sub = std::move(sub);
  events_.push_back(std::move(ev));
}

void WorkloadTrace::unsubscribe(Timestamp at, Subscription sub) {
  TraceEvent ev;
  ev.at = at;
  ev.kind = TraceEvent::Kind::kUnsubscribe;
  ev.sub = std::move(sub);
  events_.push_back(std::move(ev));
}

void WorkloadTrace::publish(Timestamp at, Message msg) {
  TraceEvent ev;
  ev.at = at;
  ev.kind = TraceEvent::Kind::kPublish;
  ev.msg = std::move(msg);
  events_.push_back(std::move(ev));
}

Timestamp WorkloadTrace::duration() const {
  Timestamp last = 0.0;
  for (const TraceEvent& ev : events_) last = std::max(last, ev.at);
  return last;
}

void WorkloadTrace::sort() {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.at < b.at;
                   });
}

std::vector<std::uint8_t> WorkloadTrace::serialize() const {
  serde::Writer w;
  w.u32(kMagic);
  w.varint(events_.size());
  for (const TraceEvent& ev : events_) {
    w.f64(ev.at);
    w.u8(static_cast<std::uint8_t>(ev.kind));
    if (ev.kind == TraceEvent::Kind::kPublish) {
      write_message(w, ev.msg);
    } else {
      write_subscription(w, ev.sub);
    }
  }
  return w.bytes();
}

WorkloadTrace WorkloadTrace::deserialize(
    const std::vector<std::uint8_t>& bytes, bool* ok) {
  WorkloadTrace trace;
  serde::Reader r(bytes);
  bool good = r.u32() == kMagic;
  if (good) {
    const auto n = r.varint();
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
      TraceEvent ev;
      ev.at = r.f64();
      ev.kind = static_cast<TraceEvent::Kind>(r.u8());
      if (ev.kind == TraceEvent::Kind::kPublish) {
        ev.msg = read_message(r);
      } else if (ev.kind == TraceEvent::Kind::kSubscribe ||
                 ev.kind == TraceEvent::Kind::kUnsubscribe) {
        ev.sub = read_subscription(r);
      } else {
        good = false;
        break;
      }
      trace.events_.push_back(std::move(ev));
    }
    good = good && r.ok();
  }
  if (ok != nullptr) *ok = good;
  if (!good) trace.events_.clear();
  return trace;
}

bool WorkloadTrace::save(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::vector<std::uint8_t> bytes = serialize();
  const bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) ==
                  bytes.size();
  std::fclose(f);
  return ok;
}

WorkloadTrace WorkloadTrace::load(const std::string& path, bool* ok) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (ok != nullptr) *ok = false;
    return {};
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  return deserialize(bytes, ok);
}

}  // namespace bluedove
