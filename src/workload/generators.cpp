#include "workload/generators.h"

#include <algorithm>

namespace bluedove {

SubscriptionGenerator::SubscriptionGenerator(SubscriptionWorkload workload,
                                             std::uint64_t seed)
    : workload_(std::move(workload)), rng_(seed) {
  const std::size_t k = workload_.schema.dimensions();
  centers_.reserve(k);
  for (std::size_t d = 0; d < k; ++d) {
    const Range domain = workload_.schema.domain(static_cast<DimId>(d));
    centers_.emplace_back(hotspot_mean(domain, d, k), workload_.sigma, domain);
  }
}

Subscription SubscriptionGenerator::next() {
  Subscription sub;
  sub.id = next_id_++;
  sub.subscriber = sub.id;
  const std::size_t k = workload_.schema.dimensions();
  sub.ranges.reserve(k);
  for (std::size_t d = 0; d < k; ++d) {
    const Range domain = workload_.schema.domain(static_cast<DimId>(d));
    const double center = centers_[d].sample(rng_);
    const double half = 0.5 * workload_.predicate_width;
    Range r{std::max(domain.lo, center - half),
            std::min(domain.hi, center + half)};
    if (r.empty()) r = Range{domain.lo, std::min(domain.hi, domain.lo + 1.0)};
    sub.ranges.push_back(r);
  }
  return sub;
}

std::vector<Subscription> SubscriptionGenerator::batch(std::size_t n) {
  std::vector<Subscription> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(next());
  return out;
}

MessageGenerator::MessageGenerator(MessageWorkload workload,
                                   std::uint64_t seed)
    : workload_(std::move(workload)), rng_(seed) {
  const std::size_t k = workload_.schema.dimensions();
  for (std::size_t d = 0; d < k; ++d) {
    const Range domain = workload_.schema.domain(static_cast<DimId>(d));
    skewed_.emplace_back(hotspot_mean(domain, d, k), workload_.sigma, domain);
    uniform_.emplace_back(domain);
  }
}

Message MessageGenerator::next() {
  Message msg;
  msg.id = next_id_++;
  const std::size_t k = workload_.schema.dimensions();
  msg.values.reserve(k);
  for (std::size_t d = 0; d < k; ++d) {
    const bool skew = d < workload_.skewed_dims;
    msg.values.push_back(skew ? skewed_[d].sample(rng_)
                              : uniform_[d].sample(rng_));
  }
  if (workload_.payload_bytes > 0) {
    msg.payload = std::string(workload_.payload_bytes, 'x');
  }
  return msg;
}

}  // namespace bluedove
