#include "workload/generators.h"

#include <algorithm>
#include <cmath>

namespace bluedove {

SubscriptionGenerator::SubscriptionGenerator(SubscriptionWorkload workload,
                                             std::uint64_t seed)
    : workload_(std::move(workload)), rng_(seed) {
  const std::size_t k = workload_.schema.dimensions();
  centers_.reserve(k);
  for (std::size_t d = 0; d < k; ++d) {
    const Range domain = workload_.schema.domain(static_cast<DimId>(d));
    centers_.emplace_back(hotspot_mean(domain, d, k), workload_.sigma, domain);
  }
  if (workload_.duplicate_skew > 0.0 && workload_.duplicate_templates > 0) {
    // Independent stream (NOT split from rng_, which would advance it):
    // the main stream stays byte-identical whether or not templates exist.
    Rng template_rng(seed ^ 0x7e317a7e5ULL);
    templates_.reserve(workload_.duplicate_templates);
    for (std::size_t t = 0; t < workload_.duplicate_templates; ++t) {
      std::vector<Range> ranges;
      ranges.reserve(k);
      for (std::size_t d = 0; d < k; ++d) {
        const Range domain = workload_.schema.domain(static_cast<DimId>(d));
        const double center = centers_[d].sample(template_rng);
        const double half = 0.5 * workload_.predicate_width;
        Range r{std::max(domain.lo, center - half),
                std::min(domain.hi, center + half)};
        if (r.empty()) {
          r = Range{domain.lo, std::min(domain.hi, domain.lo + 1.0)};
        }
        ranges.push_back(r);
      }
      templates_.push_back(std::move(ranges));
    }
    // Zipf(s) rank CDF over the pool, sampled by binary search.
    zipf_cdf_.reserve(templates_.size());
    double total = 0.0;
    for (std::size_t r = 1; r <= templates_.size(); ++r) {
      total += 1.0 / std::pow(static_cast<double>(r),
                              workload_.duplicate_zipf_s);
      zipf_cdf_.push_back(total);
    }
    for (double& c : zipf_cdf_) c /= total;
  }
}

Subscription SubscriptionGenerator::fresh() {
  Subscription sub;
  sub.id = next_id_++;
  sub.subscriber = sub.id;
  const std::size_t k = workload_.schema.dimensions();
  sub.ranges.reserve(k);
  for (std::size_t d = 0; d < k; ++d) {
    const Range domain = workload_.schema.domain(static_cast<DimId>(d));
    const double center = centers_[d].sample(rng_);
    const double half = 0.5 * workload_.predicate_width;
    Range r{std::max(domain.lo, center - half),
            std::min(domain.hi, center + half)};
    if (r.empty()) r = Range{domain.lo, std::min(domain.hi, domain.lo + 1.0)};
    sub.ranges.push_back(r);
  }
  return sub;
}

Subscription SubscriptionGenerator::next() {
  // The duplicate_skew == 0 path must consume exactly the randomness it
  // always did (short-circuit before the coin flip), so existing runs stay
  // byte-identical.
  if (workload_.duplicate_skew <= 0.0 || templates_.empty() ||
      rng_.next_double() >= workload_.duplicate_skew) {
    return fresh();
  }
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(),
                                   rng_.next_double());
  const std::size_t rank = std::min(
      static_cast<std::size_t>(it - zipf_cdf_.begin()), templates_.size() - 1);
  Subscription sub;
  sub.id = next_id_++;
  sub.subscriber = sub.id;
  const std::size_t k = workload_.schema.dimensions();
  sub.ranges.reserve(k);
  const double jitter = workload_.duplicate_jitter;
  for (std::size_t d = 0; d < k; ++d) {
    const Range domain = workload_.schema.domain(static_cast<DimId>(d));
    Range r = templates_[rank][d];
    if (jitter > 0.0) {
      r.lo = std::clamp(r.lo + rng_.uniform(-jitter, jitter), domain.lo,
                        domain.hi);
      r.hi = std::clamp(r.hi + rng_.uniform(-jitter, jitter), domain.lo,
                        domain.hi);
    }
    if (r.empty()) r = Range{domain.lo, std::min(domain.hi, domain.lo + 1.0)};
    sub.ranges.push_back(r);
  }
  return sub;
}

std::vector<Subscription> SubscriptionGenerator::batch(std::size_t n) {
  std::vector<Subscription> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(next());
  return out;
}

MessageGenerator::MessageGenerator(MessageWorkload workload,
                                   std::uint64_t seed)
    : workload_(std::move(workload)), rng_(seed) {
  const std::size_t k = workload_.schema.dimensions();
  for (std::size_t d = 0; d < k; ++d) {
    const Range domain = workload_.schema.domain(static_cast<DimId>(d));
    skewed_.emplace_back(hotspot_mean(domain, d, k), workload_.sigma, domain);
    uniform_.emplace_back(domain);
  }
}

Message MessageGenerator::next() {
  Message msg;
  msg.id = next_id_++;
  const std::size_t k = workload_.schema.dimensions();
  msg.values.reserve(k);
  for (std::size_t d = 0; d < k; ++d) {
    const bool skew = d < workload_.skewed_dims;
    msg.values.push_back(skew ? skewed_[d].sample(rng_)
                              : uniform_[d].sample(rng_));
  }
  if (workload_.payload_bytes > 0) {
    msg.payload = std::string(workload_.payload_bytes, 'x');
  }
  return msg;
}

}  // namespace bluedove
