#pragma once
// Value distributions for workload generation (paper §IV-B).
//
// Subscription predicate centres follow a cropped normal distribution
// (rejection-sampled so the in-domain shape stays Gaussian); message values
// are uniform unless an experiment asks for adverse skew. The paper places
// the hot spot of each dimension at a different position "evenly along the
// full range" to emulate differing skew across dimensions.

#include "attr/value.h"
#include "common/rng.h"

namespace bluedove {

/// Normal(mean, sigma) restricted to `domain` by rejection sampling.
/// sigma <= 0 degrades to the constant `mean`.
class CroppedNormal {
 public:
  CroppedNormal(double mean, double sigma, Range domain)
      : mean_(mean), sigma_(sigma), domain_(domain) {}

  double sample(Rng& rng) const;

  double mean() const { return mean_; }
  double sigma() const { return sigma_; }

 private:
  double mean_;
  double sigma_;
  Range domain_;
};

/// Uniform over `domain`.
class UniformDist {
 public:
  explicit UniformDist(Range domain) : domain_(domain) {}
  double sample(Rng& rng) const { return rng.uniform(domain_.lo, domain_.hi); }

 private:
  Range domain_;
};

/// Hot-spot centre for dimension d of k, spread evenly over the domain:
/// mean_d = lo + (d + 1) / (k + 1) * width.
double hotspot_mean(Range domain, std::size_t dim, std::size_t k);

}  // namespace bluedove
