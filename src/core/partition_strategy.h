#pragma once
// Subscription-space partitioning strategies.
//
// A strategy answers two questions for a dispatcher (paper §III):
//   assign()     — which matchers store a copy of a subscription, and along
//                  which dimension each copy is filed;
//   candidates() — which matchers can each compute the *complete* match set
//                  for a message, and which of their per-dimension sets to
//                  search.
//
// MPartition is BlueDove's scheme; the baseline strategies (single-dimension
// DHT partitioning and full replication) live in src/baseline and implement
// the same interface so all three systems share dispatcher/matcher code.

#include <vector>

#include "attr/message.h"
#include "attr/subscription.h"
#include "common/types.h"
#include "core/segment_view.h"

namespace bluedove {

/// One (matcher, dimension) pairing: a subscription copy filed under `dim`,
/// or a candidate matcher whose `dim` set should be searched.
struct Assignment {
  NodeId matcher = kInvalidNode;
  DimId dim = 0;

  friend bool operator==(const Assignment&, const Assignment&) = default;
};

/// Sentinel dimension for the "wide set": subscriptions whose predicate is
/// too wide on some dimension are replicated to every matcher in a small
/// set that is searched for *every* message, which keeps matching complete
/// while keeping the per-dimension sets lean (the §VI mitigation).
inline constexpr DimId kWideDim = 0xffff;

class PartitionStrategy {
 public:
  virtual ~PartitionStrategy() = default;

  virtual const char* name() const = 0;

  virtual std::vector<Assignment> assign(const SegmentView& view,
                                         const Subscription& sub) const = 0;

  virtual std::vector<Assignment> candidates(const SegmentView& view,
                                             const Message& msg) const = 0;
};

/// BlueDove's multi-dimensional partitioning (paper §III-A).
class MPartition final : public PartitionStrategy {
 public:
  struct Options {
    /// Searchable dimensions; 0 means "all schema dimensions". The Fig 11a
    /// experiment varies this from 1 to k.
    std::size_t searchable_dims = 0;

    /// §III-A1 extreme case: when every copy of a subscription lands on the
    /// same matcher, also replicate it to that matcher's clockwise neighbour
    /// on each dimension after the first.
    bool neighbor_replication = true;

    /// §VI mitigation for very wide predicates: when a predicate overlaps
    /// more than this fraction of the segments on any dimension, the
    /// subscription is filed into the globally replicated wide set
    /// (kWideDim) instead of the per-dimension sets. Every matcher searches
    /// its wide set for every message, so completeness holds by
    /// construction. 1.0 disables the cap.
    double wide_predicate_cap = 1.0;
  };

  MPartition() : MPartition(Options{}) {}
  explicit MPartition(Options options) : options_(options) {}

  const char* name() const override { return "mpartition"; }

  std::vector<Assignment> assign(const SegmentView& view,
                                 const Subscription& sub) const override;
  std::vector<Assignment> candidates(const SegmentView& view,
                                     const Message& msg) const override;

  const Options& options() const { return options_; }

 private:
  std::size_t effective_dims(const SegmentView& view) const;

  Options options_;
};

}  // namespace bluedove
