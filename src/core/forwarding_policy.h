#pragma once
// Performance-aware message forwarding (paper §III-B).
//
// Dispatchers keep a LoadView: the latest per-dimension load report pushed
// by each matcher (queue length q, arrival rate lambda, matching throughput
// mu, measured per-message service time, set size). A ForwardingPolicy
// picks one candidate (matcher, dimension) pair for each message. The four
// policies are the four the paper compares in Fig 7:
//
//   RandomPolicy            — uniform choice (baseline).
//   SubscriptionCountPolicy — fewest subscriptions in the candidate set
//                             (§III-B1).
//   ResponseTimePolicy      — shortest estimated processing time using the
//                             *last reported* queue lengths (Fig 7's
//                             "response time based policy, without
//                             intrapolation between updates").
//   AdaptivePolicy          — same estimate with the queues extrapolated
//                             forward by (lambda - mu)(t - t0)  (§III-B2,
//                             the default).
//
// The processing-time estimate is queue wait plus service:
//     est = Q_total(t) * mean_service_time / cores + service_time_dim
// where Q_total sums the matcher's per-dimension queues — matching along
// different dimensions competes for the same cores, the effect §III-B1
// calls out as the subscription-count policy's blind spot.

#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "core/partition_strategy.h"
#include "net/protocol.h"

namespace bluedove {

class LoadView {
 public:
  struct Entry {
    DimLoad load;
    Timestamp reported_at = 0.0;  ///< matcher-side measurement time
    bool known = false;
  };

  struct MatcherLoad {
    std::vector<Entry> dims;
    std::uint32_t cores = 1;
    double utilization = 0.0;     ///< busy-core fraction last window
    Timestamp reported_at = 0.0;  ///< time of the latest report
  };

  /// Applies a pushed LoadReport from `matcher`.
  void apply(NodeId matcher, const LoadReport& report);

  /// Latest per-matcher state; nullptr when never reported.
  const MatcherLoad* matcher(NodeId matcher) const;

  /// Latest entry for (matcher, dim); nullptr when never reported.
  const Entry* get(NodeId matcher, DimId dim) const;

  /// Drops all state for a matcher (it failed or left).
  void forget(NodeId matcher);

  std::size_t matcher_count() const { return matchers_.size(); }

  /// Cluster-wide load totals (used by the dispatcher's auto-scaler).
  struct Totals {
    double queue_len = 0.0;
    double arrival_rate = 0.0;
    double matching_rate = 0.0;
  };
  Totals totals() const;

 private:
  std::unordered_map<NodeId, MatcherLoad> matchers_;
};

class ForwardingPolicy {
 public:
  virtual ~ForwardingPolicy() = default;
  virtual const char* name() const = 0;

  /// Picks one of `candidates` (non-empty). `now` is the dispatcher's clock.
  virtual Assignment pick(std::span<const Assignment> candidates,
                          const LoadView& view, Timestamp now,
                          Rng& rng) const = 0;

  /// Feedback hooks (no-ops by default). The dispatcher reports every
  /// forward it performs and every fresh load report it receives, so
  /// stateful policies can estimate queues *between* matcher updates.
  virtual void on_forwarded(const Assignment& choice) { (void)choice; }
  virtual void on_report(NodeId matcher) { (void)matcher; }

  /// Number of dispatchers sharing the client traffic; stateful policies
  /// scale their own observed sends by this to estimate total arrivals.
  virtual void set_dispatcher_count(std::size_t count) { (void)count; }
};

class RandomPolicy final : public ForwardingPolicy {
 public:
  const char* name() const override { return "random"; }
  Assignment pick(std::span<const Assignment> candidates, const LoadView& view,
                  Timestamp now, Rng& rng) const override;
};

class SubscriptionCountPolicy final : public ForwardingPolicy {
 public:
  const char* name() const override { return "sub-count"; }
  Assignment pick(std::span<const Assignment> candidates, const LoadView& view,
                  Timestamp now, Rng& rng) const override;
};

class ResponseTimePolicy final : public ForwardingPolicy {
 public:
  const char* name() const override { return "response-time"; }
  Assignment pick(std::span<const Assignment> candidates, const LoadView& view,
                  Timestamp now, Rng& rng) const override;
};

class AdaptivePolicy final : public ForwardingPolicy {
 public:
  const char* name() const override { return "adaptive"; }
  Assignment pick(std::span<const Assignment> candidates, const LoadView& view,
                  Timestamp now, Rng& rng) const override;

  void on_forwarded(const Assignment& choice) override;
  void on_report(NodeId matcher) override;
  void set_dispatcher_count(std::size_t count) override {
    dispatcher_count_ = count > 0 ? static_cast<double>(count) : 1.0;
  }

  /// §III-B2 queue extrapolation, exposed for unit tests:
  /// q_t = max(0, q_t0 + arrivals_since_t0 - mu (t - t0)). The paper
  /// approximates arrivals_since_t0 by lambda (t - t0); the dispatcher
  /// additionally knows exactly what it forwarded since the report, which
  /// is the fresher signal — `local_sent` carries that count (already
  /// scaled to the whole dispatcher tier). Without extrapolation the
  /// reported q_t0 is used as-is (Fig 7's "response time based" policy).
  static double extrapolated_queue(const LoadView::Entry& entry, Timestamp now,
                                   bool extrapolate, double local_sent);

  /// Full processing-time estimate for dimension `dim` of a matcher.
  /// `sent_since_report` may be nullptr (no local accounting).
  static double processing_estimate(const LoadView::MatcherLoad& matcher,
                                    DimId dim, Timestamp now, bool extrapolate,
                                    const std::vector<double>* sent_since_report,
                                    double dispatcher_count);

 private:
  double dispatcher_count_ = 1.0;
  /// Per (matcher, dim): messages this dispatcher forwarded since the
  /// matcher's last load report.
  std::unordered_map<NodeId, std::vector<double>> sent_;
};

enum class PolicyKind { kRandom, kSubscriptionCount, kResponseTime, kAdaptive };

const char* to_string(PolicyKind kind);
std::unique_ptr<ForwardingPolicy> make_policy(PolicyKind kind);

}  // namespace bluedove
