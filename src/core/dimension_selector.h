#pragma once
// Searchable-dimension selection (paper §VI future work).
//
// "When there are large numbers of attributes, using all these dimensions
// in mPartition can incur significant overhead. Since it is likely that
// only a small number of attributes are commonly used in subscriptions, we
// want to study how to identify these attributes and adjust the
// partitioning accordingly."
//
// The selector observes registered subscriptions and scores each attribute
// by how *useful* it is as a partitioning dimension:
//   usage       — fraction of subscriptions whose predicate actually
//                 restricts the attribute (a full-domain range is "don't
//                 care", contributing nothing to partitioning);
//   selectivity — how narrow the restricting predicates are, on average;
//   spread      — how diverse the predicate centres are (predicates piled
//                 on one spot all land on the same matcher, so diversity
//                 matters as much as narrowness).
// score = usage * selectivity * spread; select(k) returns the k best
// dimensions, which plugs directly into MPartition::Options::searchable_dims
// via a schema permutation.

#include <vector>

#include "attr/schema.h"
#include "attr/subscription.h"
#include "common/stats.h"
#include "common/types.h"

namespace bluedove {

struct DimensionStats {
  DimId dim = 0;
  std::uint64_t observed = 0;    ///< subscriptions seen
  double usage = 0.0;            ///< fraction with a restricting predicate
  double mean_width_frac = 0.0;  ///< mean predicate width / domain width
  double center_spread = 0.0;    ///< stdev of centres / domain width
  double score = 0.0;
};

class DimensionSelector {
 public:
  explicit DimensionSelector(AttributeSchema schema);

  /// Accounts one subscription (call for every registration).
  void observe(const Subscription& sub);

  std::uint64_t observed() const { return observed_; }

  /// Per-dimension statistics, in schema order.
  std::vector<DimensionStats> stats() const;

  /// The k highest-scoring dimensions (schema indexes), best first.
  /// k is clamped to the schema size; with no observations the first k
  /// schema dimensions are returned.
  std::vector<DimId> select(std::size_t k) const;

 private:
  struct PerDim {
    std::uint64_t restricting = 0;
    OnlineStats width_frac;
    OnlineStats centers;
  };

  AttributeSchema schema_;
  std::vector<PerDim> dims_;
  std::uint64_t observed_ = 0;
};

}  // namespace bluedove
