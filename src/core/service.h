#pragma once
// bluedove::Service — the embeddable public API.
//
// Runs a complete BlueDove deployment (dispatcher tier, matcher tier,
// gossip overlay, delivery routing) as an in-process cluster of threads and
// exposes the classic pub/sub client surface: subscribe with k range
// predicates and a callback, publish points in the attribute space.
//
//   bluedove::ServiceConfig cfg;
//   cfg.matchers = 4;
//   bluedove::Service svc(cfg);
//   auto id = svc.subscribe({{0, 250}, {70, 74}, {0, 25}, {0, 1000}},
//                           [](const bluedove::Delivery& d) { ... });
//   svc.publish({120.0, 71.5, 10.0, 500.0}, "payload");
//
// Delivery callbacks run on the delivery-router thread; keep them short or
// hand off to your own executor. For performance experiments use the
// deterministic simulator harness (harness/experiment.h) instead.

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "attr/schema.h"
#include "core/dimension_selector.h"
#include "core/forwarding_policy.h"
#include "index/subscription_index.h"
#include "net/protocol.h"

namespace bluedove {

struct ServiceConfig {
  /// Attribute schema. If `schema` is empty, a uniform schema of
  /// `dimensions` x [0, domain_length) is used.
  AttributeSchema schema;
  std::size_t dimensions = 4;
  double domain_length = 1000.0;

  std::size_t matchers = 4;
  std::size_t dispatchers = 1;
  int matcher_cores = 2;

  PolicyKind policy = PolicyKind::kAdaptive;
  IndexKind index = IndexKind::kBucket;
  /// Requests one matcher core drains from a dimension queue per service
  /// (batched probe through SubscriptionIndex::match_batch; 1 = strict
  /// per-message service).
  int match_batch = 1;

  // In-process control-plane cadence (much faster than a real datacenter's
  // 1 s / 10 s, so the embedded cluster converges quickly).
  double gossip_interval = 0.2;
  double load_report_interval = 0.2;
  double table_pull_interval = 1.0;

  std::uint64_t seed = 42;
};

class Service {
 public:
  using DeliveryHandler = std::function<void(const Delivery&)>;

  explicit Service(ServiceConfig config = ServiceConfig{});
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  const AttributeSchema& schema() const;

  /// Registers a subscription: one [lo, hi) predicate per schema dimension.
  /// Returns its id, or 0 when the predicates do not fit the schema.
  /// Registration is asynchronous; settle() blocks until it is active.
  SubscriptionId subscribe(std::vector<Range> predicates,
                           DeliveryHandler handler);

  void unsubscribe(SubscriptionId id);

  /// Publishes a message (one coordinate per schema dimension). Returns its
  /// id, or 0 when the point does not fit the schema.
  MessageId publish(std::vector<Value> values, std::string payload = "");

  /// Blocks until every published message has been matched (or `timeout`
  /// seconds elapsed); returns whether the system went idle.
  bool wait_idle(double timeout_seconds = 5.0) const;

  /// Blocks for a short period so control-plane traffic (subscription
  /// stores, gossip, load reports) settles.
  void settle(double seconds = 0.3) const;

  struct Stats {
    std::uint64_t published = 0;
    std::uint64_t completed = 0;   ///< messages matched by some matcher
    std::uint64_t delivered = 0;   ///< callback invocations
    std::uint64_t dropped = 0;     ///< transport-level drops
  };
  Stats stats() const;

  /// Per-attribute usage statistics over every subscription registered so
  /// far, and the k best partitioning dimensions they imply (paper §VI;
  /// operators can feed this back into a redeployment's
  /// `searchable_dims`).
  std::vector<DimensionStats> dimension_stats() const;
  std::vector<DimId> recommended_dimensions(std::size_t k) const;

  /// Elastic scale-out: boots one more matcher, which joins via the split
  /// protocol (paper §III-C). Returns its node id.
  NodeId add_matcher();

  std::size_t matcher_count() const;

  void shutdown();

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace bluedove
