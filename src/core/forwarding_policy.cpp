#include "core/forwarding_policy.h"

#include <algorithm>
#include <limits>

namespace bluedove {

void LoadView::apply(NodeId matcher, const LoadReport& report) {
  MatcherLoad& state = matchers_[matcher];
  state.cores = std::max<std::uint32_t>(report.cores, 1);
  state.utilization = report.utilization;
  state.reported_at = report.measured_at;
  if (state.dims.size() < report.dims.size()) {
    state.dims.resize(report.dims.size());
  }
  for (std::size_t d = 0; d < report.dims.size(); ++d) {
    state.dims[d].load = report.dims[d];
    state.dims[d].reported_at = report.measured_at;
    state.dims[d].known = true;
  }
}

const LoadView::MatcherLoad* LoadView::matcher(NodeId matcher) const {
  auto it = matchers_.find(matcher);
  return it == matchers_.end() ? nullptr : &it->second;
}

const LoadView::Entry* LoadView::get(NodeId matcher, DimId dim) const {
  auto it = matchers_.find(matcher);
  if (it == matchers_.end() || dim >= it->second.dims.size()) return nullptr;
  const Entry& entry = it->second.dims[dim];
  return entry.known ? &entry : nullptr;
}

void LoadView::forget(NodeId matcher) { matchers_.erase(matcher); }

LoadView::Totals LoadView::totals() const {
  Totals totals;
  for (const auto& [id, state] : matchers_) {
    for (const Entry& entry : state.dims) {
      if (!entry.known) continue;
      totals.queue_len += entry.load.queue_len;
      totals.arrival_rate += entry.load.arrival_rate;
      totals.matching_rate += entry.load.matching_rate;
    }
  }
  return totals;
}

// ---------------------------------------------------------------------------

Assignment RandomPolicy::pick(std::span<const Assignment> candidates,
                              const LoadView&, Timestamp, Rng& rng) const {
  return candidates[static_cast<std::size_t>(
      rng.next_below(candidates.size()))];
}

Assignment SubscriptionCountPolicy::pick(std::span<const Assignment> candidates,
                                         const LoadView& view, Timestamp,
                                         Rng&) const {
  Assignment best = candidates.front();
  std::uint64_t best_subs = std::numeric_limits<std::uint64_t>::max();
  for (const Assignment& cand : candidates) {
    const LoadView::Entry* entry = view.get(cand.matcher, cand.dim);
    // A matcher that has never reported is treated as empty (attractive);
    // its first report corrects the picture within one push interval.
    const std::uint64_t subs = entry != nullptr ? entry->load.subscriptions : 0;
    if (subs < best_subs) {
      best_subs = subs;
      best = cand;
    }
  }
  return best;
}

double AdaptivePolicy::extrapolated_queue(const LoadView::Entry& entry,
                                          Timestamp now, bool extrapolate,
                                          double local_sent) {
  double q = entry.load.queue_len;
  if (extrapolate) {
    const double dt = std::max(now - entry.reported_at, 0.0);
    if (local_sent >= 0.0) {
      // Arrivals since the report are known locally (scaled to the whole
      // dispatcher tier); only drain needs extrapolating.
      q += local_sent - entry.load.matching_rate * dt;
    } else {
      q += (entry.load.arrival_rate - entry.load.matching_rate) * dt;
    }
  }
  return std::max(q, 0.0);
}

double AdaptivePolicy::processing_estimate(
    const LoadView::MatcherLoad& state, DimId dim, Timestamp now,
    bool extrapolate, const std::vector<double>* sent_since_report,
    double dispatcher_count) {
  if (dim >= state.dims.size() || !state.dims[dim].known) return 0.0;

  // Queue wait: all of the matcher's dimension queues compete for the same
  // cores (§III-B1's competition effect), so the wait is the total backlog
  // times the mean service time divided by the parallelism.
  double q_reported = 0.0;
  double sent_total = 0.0;
  double throughput = 0.0;
  double service_sum = 0.0;
  double subs_sum = 0.0;
  int service_n = 0;
  Timestamp reported_at = 0.0;
  for (std::size_t d = 0; d < state.dims.size(); ++d) {
    const LoadView::Entry& entry = state.dims[d];
    if (!entry.known) continue;
    reported_at = std::max(reported_at, entry.reported_at);
    q_reported += entry.load.queue_len;
    throughput += entry.load.matching_rate;
    if (sent_since_report != nullptr && d < sent_since_report->size()) {
      sent_total += (*sent_since_report)[d] * dispatcher_count;
    } else if (extrapolate) {
      // No local accounting available: fall back to the paper's lambda term.
      sent_total +=
          entry.load.arrival_rate * std::max(now - entry.reported_at, 0.0);
    }
    if (entry.load.service_time > 0.0) {
      service_sum += entry.load.service_time;
      subs_sum += static_cast<double>(entry.load.subscriptions);
      ++service_n;
    }
  }
  const double mean_service =
      service_n > 0 ? service_sum / static_cast<double>(service_n) : 0.0;
  const double cores_d =
      static_cast<double>(std::max<std::uint32_t>(1, state.cores));

  const double dt = std::max(now - reported_at, 0.0);
  double q_total = q_reported;
  double utilization = state.utilization;
  if (extrapolate) {
    // Queue evolution since the report: arrivals we know about minus what
    // the matcher can drain. Draining uses the measured service capability
    // (cores / mean service time) — an idle matcher reports near-zero
    // throughput but can still absorb a burst instantly, and mistaking
    // throughput for capability makes cold matchers look congested.
    const double drain_rate = mean_service > 0.0
                                  ? cores_d / mean_service
                                  : std::max(throughput, 1.0);
    q_total = std::max(0.0, q_reported + sent_total - drain_rate * dt);
    // Utilization added by the traffic forwarded since the report.
    utilization = std::min(
        1.0, utilization + sent_total * mean_service /
                               (cores_d * std::max(dt, 0.25)));
  }
  // Service time for the probed dimension: the measured EWMA when there is
  // history; otherwise scale the matcher's mean by the set-size ratio
  // (matching cost is roughly linear in the searched set, so a cold tiny
  // set must look cheap, not average).
  double service = state.dims[dim].load.service_time;
  if (service <= 0.0 && service_n > 0) {
    const double mean_subs = subs_sum / static_cast<double>(service_n);
    const double own_subs =
        static_cast<double>(state.dims[dim].load.subscriptions);
    const double ratio = mean_subs > 0.0 ? own_subs / mean_subs : 1.0;
    service = mean_service * std::max(ratio, 0.01);
  }
  // Work-conserving congestion model: waiting behind a moderately busy
  // matcher costs little capacity, so the cheap candidate should stay
  // attractive until the matcher approaches overload — the service term is
  // inflated by 1/(1-u) (M/M/c-style) and real backlog adds queue wait on
  // top. This keeps routing near the work-minimizing allocation at low
  // load while diverting from genuinely saturated matchers.
  const double congestion = 1.0 / std::max(0.05, 1.0 - utilization);
  return q_total * mean_service / cores_d + service * congestion;
}

namespace {

Assignment pick_by_processing_time(
    std::span<const Assignment> candidates, const LoadView& view,
    Timestamp now, bool extrapolate,
    const std::unordered_map<NodeId, std::vector<double>>* sent,
    double dispatcher_count) {
  Assignment best = candidates.front();
  double best_est = std::numeric_limits<double>::max();
  for (const Assignment& cand : candidates) {
    const LoadView::MatcherLoad* state = view.matcher(cand.matcher);
    // Unknown load: optimistic (0) so fresh matchers get traffic and start
    // reporting.
    double est = 0.0;
    if (state != nullptr) {
      const std::vector<double>* local = nullptr;
      if (sent != nullptr) {
        auto it = sent->find(cand.matcher);
        if (it != sent->end()) local = &it->second;
      }
      est = AdaptivePolicy::processing_estimate(*state, cand.dim, now,
                                                extrapolate, local,
                                                dispatcher_count);
    }
    if (est < best_est) {
      best_est = est;
      best = cand;
    }
  }
  return best;
}

}  // namespace

Assignment ResponseTimePolicy::pick(std::span<const Assignment> candidates,
                                    const LoadView& view, Timestamp now,
                                    Rng&) const {
  return pick_by_processing_time(candidates, view, now, /*extrapolate=*/false,
                                 nullptr, 1.0);
}

Assignment AdaptivePolicy::pick(std::span<const Assignment> candidates,
                                const LoadView& view, Timestamp now,
                                Rng&) const {
  return pick_by_processing_time(candidates, view, now, /*extrapolate=*/true,
                                 &sent_, dispatcher_count_);
}

void AdaptivePolicy::on_forwarded(const Assignment& choice) {
  auto& dims = sent_[choice.matcher];
  if (dims.size() <= choice.dim) dims.resize(choice.dim + 1, 0.0);
  dims[choice.dim] += 1.0;
}

void AdaptivePolicy::on_report(NodeId matcher) {
  auto it = sent_.find(matcher);
  if (it != sent_.end()) {
    std::fill(it->second.begin(), it->second.end(), 0.0);
  }
}

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kRandom:
      return "random";
    case PolicyKind::kSubscriptionCount:
      return "sub-count";
    case PolicyKind::kResponseTime:
      return "response-time";
    case PolicyKind::kAdaptive:
      return "adaptive";
  }
  return "unknown";
}

std::unique_ptr<ForwardingPolicy> make_policy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kRandom:
      return std::make_unique<RandomPolicy>();
    case PolicyKind::kSubscriptionCount:
      return std::make_unique<SubscriptionCountPolicy>();
    case PolicyKind::kResponseTime:
      return std::make_unique<ResponseTimePolicy>();
    case PolicyKind::kAdaptive:
      return std::make_unique<AdaptivePolicy>();
  }
  return nullptr;
}

}  // namespace bluedove
