#include "core/dimension_selector.h"

#include <algorithm>

namespace bluedove {

namespace {
/// A predicate covering at least this fraction of the domain counts as
/// "don't care".
constexpr double kDontCareFraction = 0.98;
}  // namespace

DimensionSelector::DimensionSelector(AttributeSchema schema)
    : schema_(std::move(schema)), dims_(schema_.dimensions()) {}

void DimensionSelector::observe(const Subscription& sub) {
  if (sub.ranges.size() != dims_.size()) return;
  ++observed_;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    const Range domain = schema_.domain(static_cast<DimId>(d));
    const Range clipped = sub.ranges[d].intersect(domain);
    const double domain_width = std::max(domain.width(), 1e-12);
    const double frac = clipped.width() / domain_width;
    if (frac >= kDontCareFraction) continue;  // unrestricting predicate
    PerDim& pd = dims_[d];
    ++pd.restricting;
    pd.width_frac.add(frac);
    pd.centers.add(0.5 * (clipped.lo + clipped.hi));
  }
}

std::vector<DimensionStats> DimensionSelector::stats() const {
  std::vector<DimensionStats> out;
  out.reserve(dims_.size());
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    const PerDim& pd = dims_[d];
    DimensionStats s;
    s.dim = static_cast<DimId>(d);
    s.observed = observed_;
    if (observed_ > 0) {
      s.usage = static_cast<double>(pd.restricting) /
                static_cast<double>(observed_);
    }
    s.mean_width_frac = pd.width_frac.mean();
    const double domain_width =
        std::max(schema_.domain(static_cast<DimId>(d)).width(), 1e-12);
    s.center_spread = pd.centers.stdev() / domain_width;
    const double selectivity =
        pd.restricting > 0 ? 1.0 - s.mean_width_frac : 0.0;
    // A uniform centre distribution has stdev ~0.29 x domain; normalize so
    // "well spread" saturates at 1 and piled-up centres score low (floor at
    // 0.05 so selectivity alone cannot be zeroed out entirely).
    const double spread = std::clamp(s.center_spread / 0.29, 0.05, 1.0);
    s.score = s.usage * selectivity * spread;
    out.push_back(s);
  }
  return out;
}

std::vector<DimId> DimensionSelector::select(std::size_t k) const {
  k = std::min(k, dims_.size());
  std::vector<DimensionStats> ranked = stats();
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const DimensionStats& a, const DimensionStats& b) {
                     return a.score > b.score;
                   });
  std::vector<DimId> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) out.push_back(ranked[i].dim);
  return out;
}

}  // namespace bluedove
