#pragma once
// SegmentView: a routing-optimized snapshot of the cluster table.
//
// Dispatchers rebuild this view whenever their pulled table changes. For
// each dimension it holds the live matchers' segments sorted by lower
// bound, supporting O(log N) point lookup (which matcher owns value v) and
// range lookup (which matchers' segments overlap predicate [l, u)) — the two
// primitives mPartition needs.

#include <vector>

#include "attr/value.h"
#include "common/types.h"
#include "net/cluster_table.h"

namespace bluedove {

class SegmentView {
 public:
  SegmentView() = default;

  /// Builds the view from live matchers only. `dims` is the schema's k; a
  /// matcher whose entry has fewer segments (still joining) is skipped.
  static SegmentView build(const ClusterTable& table, std::size_t dims);

  std::size_t dimensions() const { return dims_.size(); }
  std::size_t matcher_count() const { return matcher_count_; }
  bool empty() const { return matcher_count_ == 0; }

  /// Owner of the segment containing v on `dim`; kInvalidNode when no live
  /// matcher covers v (e.g. the owner died).
  NodeId owner(DimId dim, Value v) const;

  /// Owners of every segment overlapping `r` on `dim`, in segment order.
  std::vector<NodeId> overlapping(DimId dim, const Range& r) const;
  void overlapping(DimId dim, const Range& r, std::vector<NodeId>& out) const;

  /// The matcher owning the segment that follows `of`'s segment on `dim`
  /// (wrapping around), used for the neighbour-replication rule of §III-A1.
  NodeId clockwise_neighbor(DimId dim, NodeId of) const;

  /// Number of segments on a dimension (== number of live matchers with a
  /// segment there).
  std::size_t segment_count(DimId dim) const {
    return dim < dims_.size() ? dims_[dim].size() : 0;
  }

  struct Seg {
    Range range;
    NodeId owner;
  };
  const std::vector<Seg>& segments(DimId dim) const { return dims_[dim]; }

 private:
  std::vector<std::vector<Seg>> dims_;
  std::size_t matcher_count_ = 0;
};

}  // namespace bluedove
