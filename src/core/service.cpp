#include "core/service.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "common/logging.h"
#include "common/thread_safety.h"
#include "net/cluster_table.h"
#include "node/dispatcher_node.h"
#include "node/matcher_node.h"
#include "runtime/thread_cluster.h"

namespace bluedove {

namespace {
constexpr NodeId kMetricsSink = 1;
constexpr NodeId kDeliveryRouter = 2;
constexpr NodeId kFirstDispatcher = 10;
constexpr NodeId kFirstMatcher = 1000;
}  // namespace

class Service::Impl {
 public:
  explicit Impl(ServiceConfig config) : config_(std::move(config)) {
    if (config_.schema.dimensions() == 0) {
      config_.schema = AttributeSchema::uniform(config_.dimensions,
                                                config_.domain_length);
    }
    {
      bd::LockGuard lock(mu_);
      selector_ = std::make_unique<DimensionSelector>(config_.schema);
    }
    build();
  }

  ~Impl() { cluster_.shutdown(); }

  const AttributeSchema& schema() const { return config_.schema; }

  SubscriptionId subscribe(std::vector<Range> predicates,
                           DeliveryHandler handler) {
    if (!config_.schema.valid_predicates(predicates)) return 0;
    Subscription sub;
    sub.id = next_subscription_.fetch_add(1, std::memory_order_relaxed);
    sub.subscriber = sub.id;
    sub.ranges = std::move(predicates);
    {
      bd::LockGuard lock(mu_);
      handlers_[sub.subscriber] = std::move(handler);
      subscriptions_[sub.id] = sub;
      selector_->observe(sub);
    }
    cluster_.inject(next_dispatcher(), Envelope::of(ClientSubscribe{sub}));
    return sub.id;
  }

  void unsubscribe(SubscriptionId id) {
    Subscription sub;
    {
      bd::LockGuard lock(mu_);
      auto it = subscriptions_.find(id);
      if (it == subscriptions_.end()) return;
      sub = it->second;
      subscriptions_.erase(it);
      handlers_.erase(sub.subscriber);
    }
    cluster_.inject(next_dispatcher(),
                    Envelope::of(ClientUnsubscribe{std::move(sub)}));
  }

  MessageId publish(std::vector<Value> values, std::string payload) {
    if (!config_.schema.valid_point(values)) return 0;
    Message msg;
    const MessageId id =
        next_message_.fetch_add(1, std::memory_order_relaxed);
    msg.id = id;
    msg.values = std::move(values);
    msg.payload = std::move(payload);
    published_.fetch_add(1, std::memory_order_relaxed);
    cluster_.inject(next_dispatcher(),
                    Envelope::of(ClientPublish{std::move(msg)}));
    return id;
  }

  // The Service facade runs exclusively on the ThreadCluster substrate
  // (real threads, real time); it is never instantiated inside the
  // simulator, so polling the wall clock here cannot break determinism.
  bool wait_idle(double timeout_seconds) const {
    const auto deadline =
        std::chrono::steady_clock::now() +  // bd-lint: allow(wall-clock)
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(timeout_seconds));
    // bd-lint: allow(wall-clock)
    while (std::chrono::steady_clock::now() < deadline) {
      if (completed_.load(std::memory_order_relaxed) >=
          published_.load(std::memory_order_relaxed)) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return completed_.load() >= published_.load();
  }

  void settle(double seconds) const {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }

  Stats stats() const {
    Stats stats;
    stats.published = published_.load(std::memory_order_relaxed);
    stats.completed = completed_.load(std::memory_order_relaxed);
    stats.delivered = delivered_.load(std::memory_order_relaxed);
    stats.dropped = cluster_.dropped_messages();
    return stats;
  }

  std::vector<DimensionStats> dimension_stats() const {
    bd::LockGuard lock(mu_);
    return selector_->stats();
  }

  std::vector<DimId> recommended_dimensions(std::size_t k) const {
    bd::LockGuard lock(mu_);
    return selector_->select(k);
  }

  NodeId add_matcher() {
    NodeId id;
    {
      // Allocate the id under the lock: two concurrent add_matcher() calls
      // must not mint the same NodeId (found by the thread-safety audit).
      bd::LockGuard lock(mu_);
      id = next_matcher_id_++;
    }
    cluster_.add_node(id, std::make_unique<MatcherNode>(id, matcher_config()));
    cluster_.start(id);
    {
      bd::LockGuard lock(mu_);
      matcher_ids_.push_back(id);
    }
    return id;
  }

  std::size_t matcher_count() const {
    bd::LockGuard lock(mu_);
    return matcher_ids_.size();
  }

  void shutdown() { cluster_.shutdown(); }

 private:
  NodeId next_dispatcher() {
    const std::size_t i =
        dispatcher_rr_.fetch_add(1, std::memory_order_relaxed);
    return dispatcher_ids_[i % dispatcher_ids_.size()];
  }

  MatcherConfig matcher_config() const {
    MatcherConfig cfg;
    for (std::size_t d = 0; d < config_.schema.dimensions(); ++d) {
      cfg.domains.push_back(config_.schema.domain(static_cast<DimId>(d)));
    }
    cfg.cores = config_.matcher_cores;
    cfg.index_kind = config_.index;
    cfg.match_batch = config_.match_batch;
    cfg.match_mode = MatcherConfig::MatchMode::kFull;
    cfg.load_report_interval = config_.load_report_interval;
    cfg.gossip.round_interval = config_.gossip_interval;
    cfg.dispatchers = dispatcher_ids_;
    cfg.metrics_sink = kMetricsSink;
    cfg.delivery_sink = kDeliveryRouter;
    cfg.deliver = true;
    return cfg;
  }

  DispatcherConfig dispatcher_config() const {
    DispatcherConfig cfg;
    for (std::size_t d = 0; d < config_.schema.dimensions(); ++d) {
      cfg.domains.push_back(config_.schema.domain(static_cast<DimId>(d)));
    }
    cfg.policy = config_.policy;
    cfg.table_pull_interval = config_.table_pull_interval;
    cfg.dispatcher_count = config_.dispatchers;
    return cfg;
  }

  void build() {
    cluster_.add_node(
        kMetricsSink,
        std::make_unique<FunctionNode>(
            [this](NodeId, const Envelope& env, Timestamp) {
              if (std::holds_alternative<MatchCompleted>(env.payload)) {
                completed_.fetch_add(1, std::memory_order_relaxed);
              }
            }));
    cluster_.add_node(
        kDeliveryRouter,
        std::make_unique<FunctionNode>(
            [this](NodeId, const Envelope& env, Timestamp) {
              const auto* delivery = std::get_if<Delivery>(&env.payload);
              if (delivery == nullptr) return;
              DeliveryHandler handler;
              {
                bd::LockGuard lock(mu_);
                auto it = handlers_.find(delivery->subscriber);
                if (it != handlers_.end()) handler = it->second;
              }
              if (handler) {
                delivered_.fetch_add(1, std::memory_order_relaxed);
                handler(*delivery);
              }
            }));

    for (std::size_t i = 0; i < config_.dispatchers; ++i) {
      dispatcher_ids_.push_back(kFirstDispatcher + static_cast<NodeId>(i));
    }
    std::vector<NodeId> matchers;
    {
      bd::LockGuard lock(mu_);
      next_matcher_id_ = kFirstMatcher;
      for (std::size_t i = 0; i < config_.matchers; ++i) {
        matcher_ids_.push_back(next_matcher_id_++);
      }
      matchers = matcher_ids_;
    }

    std::vector<Range> domains;
    for (std::size_t d = 0; d < config_.schema.dimensions(); ++d) {
      domains.push_back(config_.schema.domain(static_cast<DimId>(d)));
    }
    const ClusterTable bootstrap = bootstrap_table(matchers, domains);

    for (NodeId id : dispatcher_ids_) {
      auto node = std::make_unique<DispatcherNode>(id, dispatcher_config());
      node->set_bootstrap(bootstrap);
      cluster_.add_node(id, std::move(node));
    }
    for (NodeId id : matchers) {
      auto node = std::make_unique<MatcherNode>(id, matcher_config());
      node->set_bootstrap(bootstrap);
      cluster_.add_node(id, std::move(node));
    }
    cluster_.start_all();
  }

  ServiceConfig config_;
  runtime::ThreadCluster cluster_;

  /// Fixed at build() time, before any node thread exists; read-only after.
  std::vector<NodeId> dispatcher_ids_;

  mutable bd::Mutex mu_;
  std::vector<NodeId> matcher_ids_ BD_GUARDED_BY(mu_);
  NodeId next_matcher_id_ BD_GUARDED_BY(mu_) = kFirstMatcher;
  std::unordered_map<SubscriberId, DeliveryHandler> handlers_
      BD_GUARDED_BY(mu_);
  std::unordered_map<SubscriptionId, Subscription> subscriptions_
      BD_GUARDED_BY(mu_);
  std::unique_ptr<DimensionSelector> selector_ BD_GUARDED_BY(mu_);

  std::atomic<SubscriptionId> next_subscription_{1};
  std::atomic<MessageId> next_message_{1};
  std::atomic<std::size_t> dispatcher_rr_{0};
  std::atomic<std::uint64_t> published_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> delivered_{0};
};

Service::Service(ServiceConfig config)
    : impl_(std::make_unique<Impl>(std::move(config))) {}

Service::~Service() = default;

const AttributeSchema& Service::schema() const { return impl_->schema(); }

SubscriptionId Service::subscribe(std::vector<Range> predicates,
                                  DeliveryHandler handler) {
  return impl_->subscribe(std::move(predicates), std::move(handler));
}

void Service::unsubscribe(SubscriptionId id) { impl_->unsubscribe(id); }

MessageId Service::publish(std::vector<Value> values, std::string payload) {
  return impl_->publish(std::move(values), std::move(payload));
}

bool Service::wait_idle(double timeout_seconds) const {
  return impl_->wait_idle(timeout_seconds);
}

void Service::settle(double seconds) const { impl_->settle(seconds); }

Service::Stats Service::stats() const { return impl_->stats(); }

std::vector<DimensionStats> Service::dimension_stats() const {
  return impl_->dimension_stats();
}

std::vector<DimId> Service::recommended_dimensions(std::size_t k) const {
  return impl_->recommended_dimensions(k);
}

NodeId Service::add_matcher() { return impl_->add_matcher(); }

std::size_t Service::matcher_count() const { return impl_->matcher_count(); }

void Service::shutdown() { impl_->shutdown(); }

}  // namespace bluedove
