#include "core/partition_strategy.h"

#include <algorithm>

namespace bluedove {

std::size_t MPartition::effective_dims(const SegmentView& view) const {
  const std::size_t k = view.dimensions();
  if (options_.searchable_dims == 0) return k;
  return std::min(options_.searchable_dims, k);
}

std::vector<Assignment> MPartition::assign(const SegmentView& view,
                                           const Subscription& sub) const {
  std::vector<Assignment> out;
  const std::size_t k = effective_dims(view);

  // Where would copies go on each dimension?
  std::vector<std::vector<NodeId>> per_dim(k);
  bool wide = false;
  for (std::size_t d = 0; d < k; ++d) {
    view.overlapping(static_cast<DimId>(d), sub.range(static_cast<DimId>(d)),
                     per_dim[d]);
    const std::size_t segs = view.segment_count(static_cast<DimId>(d));
    if (options_.wide_predicate_cap < 1.0 && segs > 0 &&
        static_cast<double>(per_dim[d].size()) >
            options_.wide_predicate_cap * static_cast<double>(segs)) {
      wide = true;
    }
  }

  if (wide) {
    // Too wide on some dimension: file into the globally replicated wide
    // set. Every matcher searches that set for every message, so matching
    // stays complete while the per-dimension sets stay lean.
    for (const auto& seg : view.segments(0)) {
      out.push_back(Assignment{seg.owner, kWideDim});
    }
    return out;
  }

  for (std::size_t d = 0; d < k; ++d) {
    for (NodeId owner : per_dim[d]) {
      out.push_back(Assignment{owner, static_cast<DimId>(d)});
    }
  }

  // §III-A1: if all copies landed on one matcher, spread replicas to that
  // matcher's clockwise neighbours so fault tolerance is preserved.
  if (options_.neighbor_replication && !out.empty()) {
    const NodeId first = out.front().matcher;
    const bool degenerate = std::all_of(
        out.begin(), out.end(),
        [first](const Assignment& a) { return a.matcher == first; });
    if (degenerate && view.matcher_count() > 1) {
      for (std::size_t d = 1; d < k; ++d) {
        const NodeId neighbor =
            view.clockwise_neighbor(static_cast<DimId>(d), first);
        if (neighbor != kInvalidNode && neighbor != first) {
          out.push_back(Assignment{neighbor, static_cast<DimId>(d)});
        }
      }
    }
  }
  return out;
}

std::vector<Assignment> MPartition::candidates(const SegmentView& view,
                                               const Message& msg) const {
  std::vector<Assignment> out;
  const std::size_t k = effective_dims(view);
  out.reserve(k);
  for (std::size_t d = 0; d < k; ++d) {
    const NodeId owner =
        view.owner(static_cast<DimId>(d), msg.value(static_cast<DimId>(d)));
    if (owner != kInvalidNode) {
      out.push_back(Assignment{owner, static_cast<DimId>(d)});
    }
  }
  return out;
}

}  // namespace bluedove
