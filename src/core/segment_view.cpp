#include "core/segment_view.h"

#include <algorithm>

namespace bluedove {

SegmentView SegmentView::build(const ClusterTable& table, std::size_t dims) {
  SegmentView view;
  view.dims_.resize(dims);
  for (const auto& [id, entry] : table.entries()) {
    if (!entry.alive() || entry.segments.size() < dims) continue;
    ++view.matcher_count_;
    for (std::size_t d = 0; d < dims; ++d) {
      view.dims_[d].push_back(Seg{entry.segments[d], id});
    }
  }
  for (auto& segs : view.dims_) {
    std::sort(segs.begin(), segs.end(), [](const Seg& a, const Seg& b) {
      return a.range.lo < b.range.lo;
    });
  }
  return view;
}

NodeId SegmentView::owner(DimId dim, Value v) const {
  if (dim >= dims_.size()) return kInvalidNode;
  const auto& segs = dims_[dim];
  // Last segment with lo <= v.
  auto it = std::upper_bound(
      segs.begin(), segs.end(), v,
      [](Value value, const Seg& s) { return value < s.range.lo; });
  if (it == segs.begin()) return kInvalidNode;
  --it;
  return it->range.contains(v) ? it->owner : kInvalidNode;
}

void SegmentView::overlapping(DimId dim, const Range& r,
                              std::vector<NodeId>& out) const {
  if (dim >= dims_.size()) return;
  const auto& segs = dims_[dim];
  // First segment that could overlap: the one containing r.lo, or the first
  // starting after it.
  auto it = std::upper_bound(
      segs.begin(), segs.end(), r.lo,
      [](Value value, const Seg& s) { return value < s.range.lo; });
  if (it != segs.begin()) --it;
  for (; it != segs.end() && it->range.lo < r.hi; ++it) {
    if (it->range.overlaps(r)) out.push_back(it->owner);
  }
}

std::vector<NodeId> SegmentView::overlapping(DimId dim, const Range& r) const {
  std::vector<NodeId> out;
  overlapping(dim, r, out);
  return out;
}

NodeId SegmentView::clockwise_neighbor(DimId dim, NodeId of) const {
  if (dim >= dims_.size() || dims_[dim].empty()) return kInvalidNode;
  const auto& segs = dims_[dim];
  for (std::size_t i = 0; i < segs.size(); ++i) {
    if (segs[i].owner == of) return segs[(i + 1) % segs.size()].owner;
  }
  return kInvalidNode;
}

}  // namespace bluedove
