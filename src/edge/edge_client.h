#pragma once
// EdgeClient: a blocking, single-connection client for the edge session
// protocol (edge_frontend.h) — the counterpart TcpClient is to the
// node<->node transport. One socket, one background reader thread; used by
// the edge tests and as the building block for small `bluedove_cli
// edge-blast` runs. For six-figure connection counts use edge::Swarm,
// which multiplexes many sessions per thread.
//
// Lifecycle: connect() performs the EdgeHello/EdgeWelcome handshake for a
// fresh session; disconnect() hard-closes the socket (simulating a drop —
// the server keeps the session resumable); resume() reconnects with the
// stored session id and the highest delivery sequence seen, after which
// the server replays everything unacknowledged past that point. Delivery
// acks are sent automatically every `ack_every` events (1 acks each).

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "attr/value.h"
#include "common/thread_safety.h"
#include "net/protocol.h"
#include "net/tcp_transport.h"

namespace bluedove::edge {

class EdgeClient {
 public:
  using EventHandler = std::function<void(const EdgeEvent&)>;

  explicit EdgeClient(net::TcpEndpoint edge, EventHandler on_event = nullptr,
                      int ack_every = 16);
  ~EdgeClient();

  EdgeClient(const EdgeClient&) = delete;
  EdgeClient& operator=(const EdgeClient&) = delete;

  /// Fresh session handshake. Returns false on connect/handshake failure.
  bool connect();
  /// Reconnects and resumes the existing session; replayed deliveries
  /// arrive through the normal handler. Returns false on failure.
  bool resume();
  /// Hard-closes the socket without any goodbye (models a dropped client).
  void disconnect();
  bool connected() const { return fd_.load() >= 0; }

  std::uint64_t session() const { return session_; }
  std::uint64_t last_seq() const { return last_seq_.load(); }
  /// From the most recent welcome: whether the server resumed the session,
  /// and the first sequence it promised — next_seq > last_seq + 1 on a
  /// resume means the replay ring had dropped part of the gap.
  bool welcome_resumed() const { return welcome_resumed_; }
  std::uint64_t welcome_next_seq() const { return welcome_next_seq_; }

  /// Client-chosen subscription id (unique within this session; the edge
  /// rewrites it to a cluster-global id). 0 on send failure.
  SubscriptionId subscribe(std::vector<Range> ranges);
  bool unsubscribe(SubscriptionId id);
  MessageId publish(std::vector<Value> values, std::string payload = "");
  /// Explicit cumulative ack (automatic acking still applies).
  bool ack(std::uint64_t seq);

  std::uint64_t deliveries() const { return deliveries_.load(); }
  /// Blocks until `n` total deliveries arrived or `timeout_sec` elapsed.
  bool wait_deliveries(std::uint64_t n, double timeout_sec);

 private:
  bool handshake(const EdgeHello& hello);
  bool send_env(const Envelope& env);
  void reader_loop();
  void stop_reader();

  net::TcpEndpoint edge_;
  EventHandler on_event_;
  int ack_every_;

  std::atomic<int> fd_{-1};
  std::thread reader_;
  bd::Mutex send_mu_;  ///< serializes socket writes, guards no fields

  // session_/welcome_* and next_sub_/next_msg_ are caller-thread state;
  // unacked_ moves between the handshake (before the reader thread exists)
  // and the reader loop, with the thread creation providing the hand-off —
  // see the dispatch-before-reader comment in handshake().
  std::uint64_t session_ = 0;
  std::atomic<std::uint64_t> last_seq_{0};
  bool welcome_resumed_ = false;
  std::uint64_t welcome_next_seq_ = 0;
  SubscriptionId next_sub_ = 1;
  MessageId next_msg_ = 1;
  int unacked_ = 0;

  std::atomic<std::uint64_t> deliveries_{0};
  bd::Mutex wait_mu_;   ///< empty critical section pairing with wait_cv_
  bd::CondVar wait_cv_;
};

}  // namespace bluedove::edge
