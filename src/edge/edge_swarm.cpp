#include "edge/edge_swarm.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "edge/edge_dial.h"
#include "net/wire.h"

namespace bluedove::edge {

namespace {

std::int64_t mono_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                              epoch)
      .count();
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// write_all for a non-blocking socket: parks in poll() on EAGAIN instead
/// of failing (the swarm's callers want backpressure, not drops).
bool send_all(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ::ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n >= 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      ::pollfd pfd{fd, POLLOUT, 0};
      ::poll(&pfd, 1, 100);
      continue;
    }
    return false;
  }
  return true;
}

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

double now_sec() { return static_cast<double>(mono_ns()) * 1e-9; }

}  // namespace

struct Swarm::Peer {
  int idx = 0;
  std::atomic<int> fd{-1};
  bd::Mutex send_mu;  ///< serializes socket writes, guards no fields
  std::atomic<std::uint64_t> session{0};
  std::atomic<std::uint64_t> last_seq{0};
  std::atomic<bool> live{false};

  // Driver-thread-only read assembly.
  std::uint8_t lenbuf[4];
  bool in_body = false;
  std::uint32_t len = 0;
  std::uint32_t got = 0;
  std::shared_ptr<std::vector<std::uint8_t>> body;
  int unacked = 0;
};

struct Swarm::Driver {
  int index = 0;
  int epfd = -1;
  int evfd = -1;
  std::thread thread;
  bd::Mutex mu;
  std::unordered_map<int, Peer*> by_fd BD_GUARDED_BY(mu);
};

Swarm::Swarm(SwarmConfig config) : config_(std::move(config)) {
  if (config_.drivers < 1) config_.drivers = 1;
  if (config_.ack_every < 1) config_.ack_every = 1;
  for (int i = 0; i < config_.drivers; ++i) {
    auto d = std::make_unique<Driver>();
    d->index = i;
    d->epfd = ::epoll_create1(EPOLL_CLOEXEC);
    d->evfd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    ::epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = d->evfd;
    ::epoll_ctl(d->epfd, EPOLL_CTL_ADD, d->evfd, &ev);
    drivers_.push_back(std::move(d));
  }
  for (auto& d : drivers_) {
    Driver* dp = d.get();
    d->thread = std::thread([this, dp] { driver_loop(*dp); });
  }
}

Swarm::~Swarm() {
  stop_.store(true);
  for (auto& d : drivers_) {
    const std::uint64_t one = 1;
    [[maybe_unused]] ::ssize_t n = ::write(d->evfd, &one, sizeof one);
  }
  for (auto& d : drivers_) {
    if (d->thread.joinable()) d->thread.join();
    ::close(d->epfd);
    ::close(d->evfd);
  }
  for (auto& p : peers_) {
    const int fd = p->fd.exchange(-1);
    if (fd >= 0) ::close(fd);
  }
}

// --------------------------------------------------------------------------
// Caller-side control plane
// --------------------------------------------------------------------------

bool Swarm::connect_peer(Peer& p, int idx, const Envelope* extra) {
  std::string source;
  if (config_.source_addrs > 0) {
    source = "127.0.0." + std::to_string(2 + idx % config_.source_addrs);
  }
  const int fd = dial(config_.endpoint, source);
  if (fd < 0) return false;
  EdgeHello hello;
  hello.session = p.session.load();
  hello.last_seq = p.last_seq.load();
  // Hello plus (for fresh sessions) the subscription, pipelined into one
  // frame: the edge attaches the session, then runs the rest of the frame.
  serde::Writer w;
  const std::size_t at = w.reserve(4);
  w.u32(kInvalidNode);
  write_envelope(w, Envelope::of(hello));
  if (extra != nullptr) write_envelope(w, *extra);
  w.patch_u32(at, static_cast<std::uint32_t>(w.size() - 4));
  if (!send_all(fd, w.data(), w.size())) {
    ::close(fd);
    return false;
  }
  set_nonblocking(fd);
  p.fd.store(fd);
  Driver& d = *drivers_[static_cast<std::size_t>(idx) % drivers_.size()];
  {
    bd::LockGuard lk(d.mu);
    d.by_fd[fd] = &p;
  }
  ::epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(d.epfd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    bd::LockGuard lk(d.mu);
    d.by_fd.erase(fd);
    p.fd.store(-1);
    ::close(fd);
    return false;
  }
  return true;
}

int Swarm::open(int n, SubGen sub_for, void* sub_arg, double timeout_sec) {
  const std::uint64_t before = welcomes_.load();
  int dialed = 0;
  for (int i = 0; i < n; ++i) {
    auto p = std::make_unique<Peer>();
    p->idx = static_cast<int>(peers_.size());
    Envelope sub_env;
    const Envelope* extra = nullptr;
    if (sub_for != nullptr) {
      std::vector<Range> ranges = sub_for(p->idx, sub_arg);
      if (!ranges.empty()) {
        Subscription sub;
        sub.id = static_cast<SubscriptionId>(p->idx) + 1;
        sub.ranges = std::move(ranges);
        sub_env = Envelope::of(ClientSubscribe{std::move(sub)});
        extra = &sub_env;
      }
    }
    if (connect_peer(*p, p->idx, extra)) ++dialed;
    peers_.push_back(std::move(p));
  }
  const double deadline = now_sec() + timeout_sec;
  while (welcomes_.load() < before + static_cast<std::uint64_t>(dialed) &&
         now_sec() < deadline) {
    sleep_ms(1);
  }
  return static_cast<int>(welcomes_.load() - before);
}

int Swarm::drop(int n, double timeout_sec) {
  const std::uint64_t before = live_.load();
  int requested = 0;
  for (auto it = peers_.rbegin(); it != peers_.rend() && requested < n; ++it) {
    Peer& p = **it;
    if (!p.live.load()) continue;
    const int fd = p.fd.load();
    if (fd < 0) continue;
    ::shutdown(fd, SHUT_RDWR);  // driver sees EOF and detaches the peer
    ++requested;
  }
  const double deadline = now_sec() + timeout_sec;
  while (live_.load() > before - static_cast<std::uint64_t>(requested) &&
         now_sec() < deadline) {
    sleep_ms(1);
  }
  return static_cast<int>(before - live_.load());
}

int Swarm::resume(int n, double timeout_sec) {
  const std::uint64_t before = welcomes_.load();
  int dialed = 0;
  // Most-recently-dropped first: mirrors drop()'s order, so a drop(n) /
  // resume(n) pair round-trips the same sessions.
  for (auto it = peers_.rbegin(); it != peers_.rend() && dialed < n; ++it) {
    Peer& p = **it;
    if (p.live.load() || p.session.load() == 0 || p.fd.load() >= 0) continue;
    if (connect_peer(p, p.idx, nullptr)) ++dialed;
  }
  const double deadline = now_sec() + timeout_sec;
  while (welcomes_.load() < before + static_cast<std::uint64_t>(dialed) &&
         now_sec() < deadline) {
    sleep_ms(1);
  }
  return static_cast<int>(welcomes_.load() - before);
}

bool Swarm::publish(const std::vector<Value>& values,
                    std::size_t payload_bytes) {
  if (peers_.empty()) return false;
  for (std::size_t scan = 0; scan < peers_.size(); ++scan) {
    Peer& p = *peers_[publish_rr_++ % peers_.size()];
    if (!p.live.load()) continue;
    std::string payload(payload_bytes < 8 ? 8 : payload_bytes, '\0');
    const std::int64_t t = mono_ns();
    std::memcpy(payload.data(), &t, sizeof t);
    Message msg;
    msg.id = 1;  // rewritten by the edge to a cluster-unique id
    msg.values = values;
    msg.payload = PayloadRef(std::move(payload));
    serde::Writer w;
    const std::size_t at = w.reserve(4);
    w.u32(kInvalidNode);
    write_envelope(w, Envelope::of(ClientPublish{std::move(msg)}));
    w.patch_u32(at, static_cast<std::uint32_t>(w.size() - 4));
    bd::LockGuard lk(p.send_mu);
    const int fd = p.fd.load();
    if (fd < 0) continue;
    return send_all(fd, w.data(), w.size());
  }
  return false;
}

bool Swarm::wait_delivered(std::uint64_t target, double timeout_sec) {
  const double deadline = now_sec() + timeout_sec;
  while (delivered_.load() < target) {
    if (now_sec() >= deadline) return false;
    sleep_ms(1);
  }
  return true;
}

void Swarm::drain(double quiet_sec, double timeout_sec) {
  const double deadline = now_sec() + timeout_sec;
  std::uint64_t last = delivered_.load() + gaps_.load() + dups_.load();
  double last_change = now_sec();
  while (now_sec() < deadline) {
    sleep_ms(10);
    const std::uint64_t cur = delivered_.load() + gaps_.load() + dups_.load();
    if (cur != last) {
      last = cur;
      last_change = now_sec();
    } else if (now_sec() - last_change >= quiet_sec) {
      return;
    }
  }
}

// --------------------------------------------------------------------------
// Driver threads: receive side
// --------------------------------------------------------------------------

void Swarm::driver_loop(Driver& d) {
  constexpr int kMaxEvents = 128;
  ::epoll_event events[kMaxEvents];
  while (!stop_.load()) {
    const int n = ::epoll_wait(d.epfd, events, kMaxEvents, 200);
    if (stop_.load()) break;
    for (int i = 0; i < n; ++i) {
      if (events[i].data.fd == d.evfd) {
        std::uint64_t junk;
        while (::read(d.evfd, &junk, sizeof junk) > 0) {
        }
        continue;
      }
      Peer* p = nullptr;
      {
        bd::LockGuard lk(d.mu);
        auto it = d.by_fd.find(events[i].data.fd);
        if (it != d.by_fd.end()) p = it->second;
      }
      if (p == nullptr) continue;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        detach_peer(d, *p);
        continue;
      }
      handle_peer(d, *p);
    }
  }
}

void Swarm::detach_peer(Driver& d, Peer& p) {
  const int fd = p.fd.exchange(-1);
  if (fd < 0) return;
  ::epoll_ctl(d.epfd, EPOLL_CTL_DEL, fd, nullptr);
  {
    bd::LockGuard lk(d.mu);
    d.by_fd.erase(fd);
  }
  {
    // Serialize against a publish mid-write on this fd before closing.
    bd::LockGuard lk(p.send_mu);
    ::close(fd);
  }
  p.in_body = false;
  p.got = 0;
  p.unacked = 0;
  if (p.live.exchange(false)) live_.fetch_sub(1);
}

void Swarm::handle_peer(Driver& d, Peer& p) {
  const int fd = p.fd.load();
  if (fd < 0) return;
  for (;;) {
    if (!p.in_body) {
      const ::ssize_t n = ::recv(fd, p.lenbuf + p.got, 4 - p.got, 0);
      if (n == 0) return detach_peer(d, p);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        return detach_peer(d, p);
      }
      p.got += static_cast<std::uint32_t>(n);
      if (p.got < 4) continue;
      p.len = net::wire::read_frame_len(p.lenbuf);
      if (p.len == 0 || p.len > net::wire::kMaxFrame) return detach_peer(d, p);
      p.body = std::make_shared<std::vector<std::uint8_t>>(p.len);
      p.in_body = true;
      p.got = 0;
    }
    const ::ssize_t n = ::recv(fd, p.body->data() + p.got, p.len - p.got, 0);
    if (n == 0) return detach_peer(d, p);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return detach_peer(d, p);
    }
    p.got += static_cast<std::uint32_t>(n);
    if (p.got < p.len) continue;
    auto body = std::move(p.body);
    const std::uint32_t len = p.len;
    p.in_body = false;
    p.got = 0;
    net::wire::ParsedFrame frame = net::wire::parse_frame(
        body->data(), len, std::shared_ptr<const void>(body, body.get()));
    if (!frame.ok) return detach_peer(d, p);
    for (const Envelope& env : frame.envelopes) {
      if (const auto* w = std::get_if<EdgeWelcome>(&env.payload)) {
        const std::uint64_t prev = p.session.load();
        if (prev != 0) {
          if (!w->resumed) {
            sessions_lost_.fetch_add(1);
            p.last_seq.store(0);
          } else {
            const std::uint64_t expect = p.last_seq.load() + 1;
            if (w->next_seq > expect) gaps_.fetch_add(w->next_seq - expect);
          }
        }
        p.session.store(w->session);
        if (!p.live.exchange(true)) live_.fetch_add(1);
        welcomes_.fetch_add(1);
      } else if (const auto* ev = std::get_if<EdgeEvent>(&env.payload)) {
        const std::uint64_t last = p.last_seq.load();
        if (ev->seq <= last) {
          dups_.fetch_add(1);
          continue;
        }
        if (ev->seq != last + 1) gaps_.fetch_add(ev->seq - last - 1);
        p.last_seq.store(ev->seq);
        delivered_.fetch_add(1);
        const PayloadRef& payload = ev->delivery.payload;
        if (payload.size() >= 8) {
          std::int64_t t0;
          std::memcpy(&t0, payload.data(), sizeof t0);
          const std::int64_t dt = mono_ns() - t0;
          if (dt >= 0) latency_.record(static_cast<double>(dt) * 1e-9);
        }
        if (++p.unacked >= config_.ack_every) {
          p.unacked = 0;
          serde::Writer w;
          const std::size_t at = w.reserve(4);
          w.u32(kInvalidNode);
          write_envelope(w, Envelope::of(EdgeAck{ev->seq}));
          w.patch_u32(at, static_cast<std::uint32_t>(w.size() - 4));
          bd::LockGuard lk(p.send_mu);
          const int cur = p.fd.load();
          // Best effort: acks are cumulative, the next one covers a miss.
          if (cur >= 0) send_all(cur, w.data(), w.size());
        }
      }
    }
  }
}

}  // namespace bluedove::edge
