#include "edge/edge_frontend.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/logging.h"
#include "net/wire.h"
#include "obs/recorder.h"

namespace bluedove::edge {

namespace {

/// Edge-minted subscription/message ids carry this bit so they can never
/// collide with ids chosen by direct (TcpClient) clients of the same
/// cluster, which count up from 1.
constexpr std::uint64_t kEdgeIdBit = 1ull << 62;

constexpr std::size_t kNoOpenFrame = static_cast<std::size_t>(-1);

double mono_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration<double>(clock::now() - epoch).count();
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

// --------------------------------------------------------------------------
// Internal structures
// --------------------------------------------------------------------------

/// One client connection: the per-socket state machine. Owned by exactly
/// one reactor at a time (migration moves the whole object), so no field
/// needs a lock.
struct EdgeFrontend::Conn {
  int fd = -1;
  Session* session = nullptr;

  // Framed read assembly: 4 length bytes, then the body read into a fresh
  // refcounted buffer so parse_frame() yields zero-copy payload views that
  // keep the frame alive across the fan-out / injection into the node.
  std::uint8_t lenbuf[4];
  bool in_body = false;
  std::uint32_t len = 0;
  std::uint32_t got = 0;
  std::shared_ptr<std::vector<std::uint8_t>> body;

  // Bounded write queue: one contiguous buffer of framed bytes. Bytes in
  // [woff, size) are unsent; [open_header, size) is the still-open frame
  // whose length prefix is patched when the frame closes.
  std::vector<std::uint8_t> wbuf;
  std::size_t woff = 0;
  std::size_t open_header = kNoOpenFrame;
  int open_envs = 0;
  bool want_write = false;  ///< EPOLLOUT currently armed
  bool dirty = false;       ///< queued output since the last flush pass
  bool counted = false;     ///< already in conn_count_ (survives migration)

  std::size_t unsent() const { return wbuf.size() - woff; }
};

/// A client session: outlives its connection, owns the delivery sequence
/// and the bounded replay ring. Owned by the reactor at index
/// (id % reactors), which is also the only thread that touches it.
struct EdgeFrontend::Session {
  std::uint64_t id = 0;
  std::uint64_t next_seq = 1;  ///< sequence the next delivery will carry
  std::uint64_t acked = 0;     ///< cumulative client ack
  std::deque<EdgeEvent> ring;  ///< unacked deliveries, seq ascending
  Conn* conn = nullptr;        ///< nullptr while detached
  double detached_since = 0.0;
  /// Client-chosen subscription ids <-> the edge-global ids the cluster
  /// sees (rewritten on the way in so concurrent clients cannot collide).
  std::unordered_map<std::uint64_t, std::uint64_t> client_to_global;
  std::unordered_map<std::uint64_t, std::uint64_t> global_to_client;
  std::unordered_map<std::uint64_t, Subscription> subs_by_global;
};

/// Cross-thread work handed to a reactor (acceptor: new fds; node thread:
/// deliveries; other reactors: connection migration on resume).
struct EdgeFrontend::Task {
  enum class Kind { kNewConn, kDeliver, kAdopt };
  Kind kind = Kind::kNewConn;
  int fd = -1;                        // kNewConn
  Delivery delivery;                  // kDeliver
  double enqueued_at = 0.0;           // kDeliver
  std::unique_ptr<Conn> conn;         // kAdopt
  EdgeHello hello;                    // kAdopt
  std::vector<Envelope> rest;         // kAdopt: envelopes after the hello
};

struct EdgeFrontend::Reactor {
  int index = 0;
  int epfd = -1;
  int evfd = -1;
  std::thread thread;

  bd::Mutex mu;
  /// Cross-thread inbox, drained on eventfd wake. The only shared state in
  /// a Reactor: everything below is owned by the reactor thread.
  std::deque<Task> tasks BD_GUARDED_BY(mu);

  std::unordered_map<int, std::unique_ptr<Conn>> conns;
  std::unordered_map<std::uint64_t, std::unique_ptr<Session>> sessions;
  std::uint64_t next_ordinal = 1;  ///< minted ids: ordinal * R + index
  std::vector<int> dirty;          ///< fds with queued output this wake
  serde::Writer scratch;           ///< reused envelope-body serializer
  double next_reap = 0.0;
  obs::Gauge* conns_gauge = nullptr;
};

// --------------------------------------------------------------------------
// Setup / teardown
// --------------------------------------------------------------------------

EdgeFrontend::EdgeFrontend(EdgeConfig config, NodeId node, IngressFn ingress)
    : config_(std::move(config)), node_(node), ingress_(std::move(ingress)) {
  if (config_.reactors < 1) config_.reactors = 1;
  if (config_.fanout_batch < 1) config_.fanout_batch = 1;

  m_accepts_ = &metrics_.counter("edge.accepts");
  m_accept_rejects_ = &metrics_.counter("edge.accept_rejects");
  m_disconnects_ = &metrics_.counter("edge.disconnects");
  m_evictions_ = &metrics_.counter("edge.evictions");
  m_malformed_ = &metrics_.counter("edge.malformed");
  m_sessions_created_ = &metrics_.counter("edge.sessions_created");
  m_sessions_resumed_ = &metrics_.counter("edge.sessions_resumed");
  m_sessions_reaped_ = &metrics_.counter("edge.sessions_reaped");
  m_subscribes_ = &metrics_.counter("edge.subscribes");
  m_unsubscribes_ = &metrics_.counter("edge.unsubscribes");
  m_publishes_ = &metrics_.counter("edge.publishes");
  m_acks_ = &metrics_.counter("edge.acks");
  m_deliveries_ = &metrics_.counter("edge.deliveries");
  m_deliveries_orphaned_ = &metrics_.counter("edge.deliveries_orphaned");
  m_replay_hits_ = &metrics_.counter("edge.replay_hits");
  m_replay_gaps_ = &metrics_.counter("edge.replay_gaps");
  m_replay_overflow_ = &metrics_.counter("edge.replay_overflow");
  m_frames_out_ = &metrics_.counter("edge.frames_out");
  m_bytes_out_ = &metrics_.counter("edge.bytes_out");
  m_conns_ = &metrics_.gauge("edge.connections");
  m_sessions_gauge_ = &metrics_.gauge("edge.sessions");
  m_queue_high_water_ = &metrics_.gauge("edge.queue_high_water");
  m_fanout_batch_ = &metrics_.histogram("edge.fanout_batch");
  m_delivery_latency_ = &metrics_.histogram("edge.delivery_latency");

  // Bind immediately so port 0 resolves before start() (TcpHost idiom).
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    BD_WARN("edge: socket() failed: ", std::strerror(errno));
    return;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  ::sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  }
  if (::bind(fd, reinterpret_cast<::sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, config_.listen_backlog) != 0) {
    BD_WARN("edge: bind/listen on port ", config_.port,
            " failed: ", std::strerror(errno));
    ::close(fd);
    return;
  }
  ::socklen_t alen = sizeof addr;
  ::getsockname(fd, reinterpret_cast<::sockaddr*>(&addr), &alen);
  port_ = ntohs(addr.sin_port);
  listen_fd_.store(fd);
}

EdgeFrontend::~EdgeFrontend() { stop(); }

void EdgeFrontend::start() {
  if (started_ || listen_fd_.load() < 0) return;
  started_ = true;
  for (int i = 0; i < config_.reactors; ++i) {
    auto r = std::make_unique<Reactor>();
    r->index = i;
    r->epfd = ::epoll_create1(EPOLL_CLOEXEC);
    r->evfd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    r->conns_gauge = &metrics_.gauge("edge.reactor" + std::to_string(i) +
                                     ".connections");
    ::epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = r->evfd;
    ::epoll_ctl(r->epfd, EPOLL_CTL_ADD, r->evfd, &ev);
    reactors_.push_back(std::move(r));
  }
  for (auto& r : reactors_) {
    Reactor* rp = r.get();
    r->thread = std::thread([this, rp] { reactor_loop(*rp); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void EdgeFrontend::stop() {
  if (!started_) {
    const int fd = listen_fd_.exchange(-1);
    if (fd >= 0) ::close(fd);
    return;
  }
  if (stop_.exchange(true)) return;
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& r : reactors_) {
    const std::uint64_t one = 1;
    [[maybe_unused]] ::ssize_t n = ::write(r->evfd, &one, sizeof one);
    if (r->thread.joinable()) r->thread.join();
  }
  for (auto& r : reactors_) {
    for (auto& [cfd, conn] : r->conns) ::close(conn->fd);
    r->conns.clear();
    r->sessions.clear();
    {
      bd::LockGuard lk(r->mu);
      for (Task& t : r->tasks) {
        if (t.kind == Task::Kind::kNewConn && t.fd >= 0) ::close(t.fd);
        if (t.kind == Task::Kind::kAdopt && t.conn) ::close(t.conn->fd);
      }
      r->tasks.clear();
    }
    ::close(r->epfd);
    ::close(r->evfd);
  }
}

std::uint64_t EdgeFrontend::connections() const { return conn_count_.load(); }
std::uint64_t EdgeFrontend::sessions() const { return session_count_.load(); }

// --------------------------------------------------------------------------
// Acceptor
// --------------------------------------------------------------------------

void EdgeFrontend::accept_loop() {
  obs::Recorder::bind_node(node_);
  obs::Recorder::label_thread("node" + std::to_string(node_) +
                              ".edge.acceptor");
  std::size_t next = 0;
  while (!stop_.load()) {
    const int lfd = listen_fd_.load();
    if (lfd < 0) break;
    const int fd = ::accept4(lfd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      const int err = errno;
      if (stop_.load() || listen_fd_.load() < 0) break;  // closed by stop()
      if (err == EINTR || err == ECONNABORTED) continue;
      if (err == EMFILE || err == ENFILE || err == ENOBUFS ||
          err == ENOMEM) {
        // Out of fds/buffers: expected under load when the deployment fd
        // cap is below max_connections. Shed and retry instead of killing
        // the acceptor for the life of the process.
        m_accept_rejects_->inc();
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      BD_WARN("edge: accept4() failed: ", std::strerror(err));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    if (conn_count_.load() >= config_.max_connections) {
      m_accept_rejects_->inc();
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    m_accepts_->inc();
    Task t;
    t.kind = Task::Kind::kNewConn;
    t.fd = fd;
    post(*reactors_[next], std::move(t));
    next = (next + 1) % reactors_.size();
  }
}

void EdgeFrontend::post(Reactor& r, Task&& t) {
  bool wake = false;
  {
    bd::LockGuard lk(r.mu);
    wake = r.tasks.empty();
    r.tasks.push_back(std::move(t));
  }
  if (wake) {
    const std::uint64_t one = 1;
    [[maybe_unused]] ::ssize_t n = ::write(r.evfd, &one, sizeof one);
  }
}

void EdgeFrontend::deliver(const Delivery& d) {
  if (reactors_.empty()) return;
  Task t;
  t.kind = Task::Kind::kDeliver;
  t.delivery = d;  // payload is a refcount bump, not a byte copy
  t.enqueued_at = mono_seconds();
  post(reactor_of(d.subscriber), std::move(t));
}

// --------------------------------------------------------------------------
// Reactor loop
// --------------------------------------------------------------------------

void EdgeFrontend::reactor_loop(Reactor& r) {
  obs::Recorder::bind_node(node_);
  obs::Recorder::label_thread("node" + std::to_string(node_) +
                              ".edge.reactor" + std::to_string(r.index));
  constexpr int kMaxEvents = 256;
  ::epoll_event events[kMaxEvents];
  r.next_reap = mono_seconds() + config_.reap_interval;
  std::deque<Task> batch;
  while (!stop_.load()) {
    const int timeout_ms =
        std::max(1, static_cast<int>(config_.reap_interval * 1000));
    const int n = ::epoll_wait(r.epfd, events, kMaxEvents, timeout_ms);
    if (stop_.load()) break;
    bool drain_tasks = false;
    for (int i = 0; i < n; ++i) {
      if (events[i].data.fd == r.evfd) {
        std::uint64_t junk;
        while (::read(r.evfd, &junk, sizeof junk) > 0) {
        }
        drain_tasks = true;
        continue;
      }
      auto it = r.conns.find(events[i].data.fd);
      if (it == r.conns.end()) continue;
      Conn& c = *it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        close_conn(r, c, /*evicted=*/false);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) {
        handle_readable(r, c);
        if (r.conns.find(events[i].data.fd) == r.conns.end()) continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) handle_writable(r, c);
    }
    if (drain_tasks) {
      {
        bd::LockGuard lk(r.mu);
        batch.swap(r.tasks);
      }
      for (Task& t : batch) {
        switch (t.kind) {
          case Task::Kind::kNewConn: {
            auto conn = std::make_unique<Conn>();
            conn->fd = t.fd;
            adopt_conn(r, std::move(conn));
            break;
          }
          case Task::Kind::kDeliver:
            deliver_on_reactor(r, t.delivery, t.enqueued_at);
            break;
          case Task::Kind::kAdopt: {
            const int fd = t.conn->fd;
            adopt_conn(r, std::move(t.conn));
            auto it = r.conns.find(fd);
            if (it != r.conns.end()) {
              attach_session(r, *it->second, t.hello);
              for (Envelope& env : t.rest) {
                it = r.conns.find(fd);
                if (it == r.conns.end()) break;
                handle_envelope(r, *it->second, std::move(env));
              }
            }
            break;
          }
        }
      }
      batch.clear();
    }
    // Flush everything that queued output during this wake: close the open
    // frame and push bytes until the socket would block (then EPOLLOUT
    // takes over — interest-mask driven flushing).
    for (const int fd : r.dirty) {
      auto it = r.conns.find(fd);
      if (it == r.conns.end()) continue;
      it->second->dirty = false;
      flush_conn(r, *it->second);
    }
    r.dirty.clear();
    const double now = mono_seconds();
    if (now >= r.next_reap) {
      reap_sessions(r);
      r.next_reap = now + config_.reap_interval;
    }
  }
}

void EdgeFrontend::adopt_conn(Reactor& r, std::unique_ptr<Conn> conn) {
  ::epoll_event ev{};
  ev.events = EPOLLIN | (conn->want_write ? EPOLLOUT : 0u);
  ev.data.fd = conn->fd;
  if (::epoll_ctl(r.epfd, EPOLL_CTL_ADD, conn->fd, &ev) != 0) {
    ::close(conn->fd);
    if (conn->session != nullptr) conn->session->conn = nullptr;
    if (conn->counted) conn_count_.fetch_sub(1);
    return;
  }
  const int fd = conn->fd;
  if (!conn->counted) {
    conn->counted = true;
    conn_count_.fetch_add(1);
    m_conns_->set(static_cast<double>(conn_count_.load()));
  }
  r.conns.emplace(fd, std::move(conn));
  r.conns_gauge->set(static_cast<double>(r.conns.size()));
}

// --------------------------------------------------------------------------
// Read path
// --------------------------------------------------------------------------

void EdgeFrontend::handle_readable(Reactor& r, Conn& c) {
  const int fd = c.fd;
  for (;;) {
    if (!c.in_body) {
      const ::ssize_t n = ::recv(fd, c.lenbuf + c.got, 4 - c.got, 0);
      if (n == 0) return close_conn(r, c, false);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        return close_conn(r, c, false);
      }
      c.got += static_cast<std::uint32_t>(n);
      if (c.got < 4) continue;
      c.len = net::wire::read_frame_len(c.lenbuf);
      if (c.len == 0 || c.len > net::wire::kMaxFrame) {
        m_malformed_->inc();
        return close_conn(r, c, false);
      }
      c.body = std::make_shared<std::vector<std::uint8_t>>(c.len);
      c.in_body = true;
      c.got = 0;
    }
    const ::ssize_t n =
        ::recv(fd, c.body->data() + c.got, c.len - c.got, 0);
    if (n == 0) return close_conn(r, c, false);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return close_conn(r, c, false);
    }
    c.got += static_cast<std::uint32_t>(n);
    if (c.got < c.len) continue;
    // Frame complete: parse with the refcounted buffer as owner, so every
    // payload is a zero-copy view that keeps the frame alive into the
    // dispatcher (and, for publishes, across the whole match pipeline).
    auto body = std::move(c.body);
    const std::uint32_t len = c.len;
    c.in_body = false;
    c.got = 0;
    net::wire::ParsedFrame frame = net::wire::parse_frame(
        body->data(), len, std::shared_ptr<const void>(body, body.get()));
    if (!frame.ok) {
      m_malformed_->inc();
      return close_conn(r, c, false);
    }
    for (std::size_t i = 0; i < frame.envelopes.size(); ++i) {
      Envelope& env = frame.envelopes[i];
      if (auto* hello = std::get_if<EdgeHello>(&env.payload)) {
        std::vector<Envelope> rest(
            std::make_move_iterator(frame.envelopes.begin() + i + 1),
            std::make_move_iterator(frame.envelopes.end()));
        handle_hello(r, c, *hello, std::move(rest));
        // The connection may have migrated to another reactor or closed;
        // either way this reactor is done with it for now.
        return;
      }
      handle_envelope(r, c, std::move(env));
      if (r.conns.find(fd) == r.conns.end()) return;  // closed mid-frame
    }
  }
}

void EdgeFrontend::handle_envelope(Reactor& r, Conn& c, Envelope&& env) {
  Session* s = c.session;
  if (s == nullptr) {
    // Protocol requires EdgeHello first on every connection.
    m_malformed_->inc();
    return close_conn(r, c, false);
  }
  std::visit(
      [&](auto&& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, EdgeAck>) {
          m_acks_->inc();
          if (msg.seq > s->acked) s->acked = msg.seq;
          while (!s->ring.empty() && s->ring.front().seq <= s->acked) {
            s->ring.pop_front();
          }
        } else if constexpr (std::is_same_v<T, ClientSubscribe>) {
          Subscription sub = std::move(msg.sub);
          const std::uint64_t client_id = sub.id;
          // A reused client sub id replaces the previous subscription:
          // withdraw the old global mapping first so it cannot keep
          // matching (duplicate deliveries) or leak until session drop.
          auto old = s->client_to_global.find(client_id);
          if (old != s->client_to_global.end()) {
            const std::uint64_t old_gid = old->second;
            s->global_to_client.erase(old_gid);
            auto sit = s->subs_by_global.find(old_gid);
            if (sit != s->subs_by_global.end()) {
              Subscription old_sub = std::move(sit->second);
              s->subs_by_global.erase(sit);
              m_unsubscribes_->inc();
              ingress_(Envelope::of(ClientUnsubscribe{std::move(old_sub)}));
            }
          }
          const std::uint64_t gid = kEdgeIdBit | next_sub_id_.fetch_add(1);
          sub.id = gid;
          sub.subscriber = s->id;
          s->client_to_global[client_id] = gid;
          s->global_to_client[gid] = client_id;
          s->subs_by_global[gid] = sub;
          m_subscribes_->inc();
          ingress_(Envelope::of(ClientSubscribe{std::move(sub)}));
        } else if constexpr (std::is_same_v<T, ClientUnsubscribe>) {
          auto it = s->client_to_global.find(msg.sub.id);
          if (it == s->client_to_global.end()) return;
          const std::uint64_t gid = it->second;
          s->client_to_global.erase(it);
          s->global_to_client.erase(gid);
          auto sit = s->subs_by_global.find(gid);
          if (sit == s->subs_by_global.end()) return;
          Subscription sub = std::move(sit->second);
          s->subs_by_global.erase(sit);
          m_unsubscribes_->inc();
          ingress_(Envelope::of(ClientUnsubscribe{std::move(sub)}));
        } else if constexpr (std::is_same_v<T, ClientPublish>) {
          msg.msg.id = kEdgeIdBit | next_msg_id_.fetch_add(1);
          m_publishes_->inc();
          ingress_(Envelope::of(ClientPublish{std::move(msg.msg)}));
        } else {
          m_malformed_->inc();
        }
      },
      env.payload);
}

// --------------------------------------------------------------------------
// Sessions: hello / resume / replay
// --------------------------------------------------------------------------

void EdgeFrontend::handle_hello(Reactor& r, Conn& c, const EdgeHello& hello,
                                std::vector<Envelope>&& rest) {
  if (c.session != nullptr) {
    m_malformed_->inc();
    return close_conn(r, c, false);
  }
  // Resume requests route to the session's owning reactor (id % R); a
  // connection accepted elsewhere migrates — whole Conn state moves, the
  // target re-registers the fd and continues with any pipelined envelopes.
  if (hello.session != 0) {
    Reactor& owner = reactor_of(hello.session);
    if (owner.index != r.index) {
      const int fd = c.fd;
      ::epoll_ctl(r.epfd, EPOLL_CTL_DEL, fd, nullptr);
      auto it = r.conns.find(fd);
      Task t;
      t.kind = Task::Kind::kAdopt;
      t.conn = std::move(it->second);
      t.hello = hello;
      t.rest = std::move(rest);
      r.conns.erase(it);
      r.conns_gauge->set(static_cast<double>(r.conns.size()));
      post(owner, std::move(t));
      return;
    }
  }
  attach_session(r, c, hello);
  const int fd = c.fd;
  for (Envelope& env : rest) {
    if (r.conns.find(fd) == r.conns.end()) return;
    handle_envelope(r, c, std::move(env));
  }
}

void EdgeFrontend::attach_session(Reactor& r, Conn& c, const EdgeHello& hello) {
  Session* s = nullptr;
  bool resumed = false;
  if (hello.session != 0) {
    auto it = r.sessions.find(hello.session);
    if (it != r.sessions.end()) {
      s = it->second.get();
      resumed = true;
    }
  }
  if (s == nullptr) {
    auto fresh = std::make_unique<Session>();
    fresh->id = r.next_ordinal++ * static_cast<std::uint64_t>(
                                       reactors_.size()) +
                static_cast<std::uint64_t>(r.index);
    s = fresh.get();
    r.sessions.emplace(s->id, std::move(fresh));
    session_count_.fetch_add(1);
    m_sessions_gauge_->set(static_cast<double>(session_count_.load()));
    m_sessions_created_->inc();
  } else {
    m_sessions_resumed_->inc();
    if (s->conn != nullptr) {
      // Latest connection wins; the stale one (half-dead NAT socket, or a
      // client double-connect) is dropped without detaching the session.
      Conn* old = s->conn;
      old->session = nullptr;
      close_conn(r, *old, false);
    }
    // The client's last seen sequence number is an implicit cumulative ack.
    if (hello.last_seq > s->acked) s->acked = hello.last_seq;
    while (!s->ring.empty() && s->ring.front().seq <= s->acked) {
      s->ring.pop_front();
    }
  }
  c.session = s;
  s->conn = &c;
  s->detached_since = 0.0;

  EdgeWelcome welcome;
  welcome.session = s->id;
  welcome.resumed = resumed;
  const std::uint64_t expect = hello.last_seq + 1;
  welcome.next_seq = s->ring.empty() ? s->next_seq : s->ring.front().seq;
  if (resumed && welcome.next_seq > expect) {
    // Entries past the client's horizon already fell off the bounded ring:
    // the resume has a gap, reported via next_seq and counted per message.
    m_replay_gaps_->inc(welcome.next_seq - expect);
  }
  const int fd = c.fd;
  enqueue_event(r, c, Envelope::of(welcome));
  // Replay everything still unacknowledged. enqueue_event may evict the
  // connection mid-replay (bounded write queue); the guard stops the loop
  // before touching the destroyed Conn — the session keeps its ring.
  for (const EdgeEvent& ev : s->ring) {
    auto it = r.conns.find(fd);
    if (it == r.conns.end()) return;
    m_replay_hits_->inc();
    enqueue_event(r, *it->second, Envelope::of(ev));
  }
}

void EdgeFrontend::deliver_on_reactor(Reactor& r, const Delivery& d,
                                      double enqueued_at) {
  auto it = r.sessions.find(d.subscriber);
  if (it == r.sessions.end()) {
    m_deliveries_orphaned_->inc();
    return;
  }
  Session& s = *it->second;
  EdgeEvent ev;
  ev.seq = s.next_seq++;
  ev.delivery = d;  // payload refcount bump, bytes stay in the matcher frame
  auto g = s.global_to_client.find(d.sub_id);
  if (g != s.global_to_client.end()) ev.delivery.sub_id = g->second;
  if (s.ring.size() >= config_.replay_entries) {
    s.ring.pop_front();
    m_replay_overflow_->inc();
  }
  s.ring.push_back(ev);
  m_deliveries_->inc();
  if (s.conn != nullptr) {
    enqueue_event(r, *s.conn, Envelope::of(std::move(ev)));
    m_delivery_latency_->record(mono_seconds() - enqueued_at);
  }
}

// --------------------------------------------------------------------------
// Write path: bounded queue, frame batching, interest-mask flushing
// --------------------------------------------------------------------------

void EdgeFrontend::enqueue_event(Reactor& r, Conn& c, const Envelope& env) {
  if (c.open_header == kNoOpenFrame) {
    c.open_header = c.wbuf.size();
    c.wbuf.resize(c.wbuf.size() + 8);  // header patched at frame close
    c.open_envs = 0;
  }
  r.scratch.clear();
  net::wire::build_body(r.scratch, env);
  c.wbuf.insert(c.wbuf.end(), r.scratch.data(),
                r.scratch.data() + r.scratch.size());
  if (++c.open_envs >= config_.fanout_batch) close_frame(c);
  m_queue_high_water_->record_max(static_cast<double>(c.unsent()));
  if (!c.dirty) {
    c.dirty = true;
    r.dirty.push_back(c.fd);
  }
  // Slow-client policy: a connection that cannot absorb its fan-out share
  // is evicted rather than allowed to grow an unbounded queue. The bound
  // applies to post-flush residue only: a fast client whose queue merely
  // grew within one wake (a large delivery batch, a resume replaying a big
  // ring) gets its bytes pushed to the socket first, so acks can make
  // progress and an oversized replay drains incrementally instead of
  // evicting before a single byte is sent. Its session stays resumable;
  // undelivered events wait in the replay ring.
  if (c.unsent() > config_.write_queue_bytes) {
    const int fd = c.fd;
    flush_conn(r, c);  // may close the conn itself on a socket error
    auto it = r.conns.find(fd);
    if (it == r.conns.end()) return;
    if (it->second->unsent() > config_.write_queue_bytes) {
      close_conn(r, *it->second, true);
    }
  }
}

void EdgeFrontend::close_frame(Conn& c) {
  if (c.open_header == kNoOpenFrame) return;
  const std::size_t body_bytes = c.wbuf.size() - c.open_header - 8;
  std::uint8_t header[8];
  net::wire::fill_header(header, static_cast<std::uint32_t>(body_bytes),
                         node_);
  std::memcpy(c.wbuf.data() + c.open_header, header, 8);
  m_frames_out_->inc();
  m_fanout_batch_->record_units(static_cast<std::uint64_t>(c.open_envs));
  c.open_header = kNoOpenFrame;
  c.open_envs = 0;
}

void EdgeFrontend::flush_conn(Reactor& r, Conn& c) {
  close_frame(c);
  while (c.woff < c.wbuf.size()) {
    const ::ssize_t n = ::send(c.fd, c.wbuf.data() + c.woff,
                               c.wbuf.size() - c.woff, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return close_conn(r, c, false);
    }
    c.woff += static_cast<std::size_t>(n);
    m_bytes_out_->inc(static_cast<std::uint64_t>(n));
  }
  if (c.woff == c.wbuf.size()) {
    c.wbuf.clear();
    c.woff = 0;
  } else if (c.woff > (1u << 16)) {
    c.wbuf.erase(c.wbuf.begin(),
                 c.wbuf.begin() + static_cast<std::ptrdiff_t>(c.woff));
    c.woff = 0;
  }
  update_interest(r, c);
}

void EdgeFrontend::handle_writable(Reactor& r, Conn& c) { flush_conn(r, c); }

void EdgeFrontend::update_interest(Reactor& r, Conn& c) {
  const bool want = c.woff < c.wbuf.size();
  if (want == c.want_write) return;
  c.want_write = want;
  ::epoll_event ev{};
  ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
  ev.data.fd = c.fd;
  ::epoll_ctl(r.epfd, EPOLL_CTL_MOD, c.fd, &ev);
}

// --------------------------------------------------------------------------
// Teardown paths
// --------------------------------------------------------------------------

void EdgeFrontend::close_conn(Reactor& r, Conn& c, bool evicted) {
  const int fd = c.fd;
  auto it = r.conns.find(fd);
  if (it == r.conns.end() || it->second.get() != &c) return;
  ::epoll_ctl(r.epfd, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  if (c.session != nullptr) {
    c.session->conn = nullptr;
    c.session->detached_since = mono_seconds();
    c.session = nullptr;
  }
  (evicted ? m_evictions_ : m_disconnects_)->inc();
  r.conns.erase(it);
  conn_count_.fetch_sub(1);
  m_conns_->set(static_cast<double>(conn_count_.load()));
  r.conns_gauge->set(static_cast<double>(r.conns.size()));
}

void EdgeFrontend::reap_sessions(Reactor& r) {
  const double now = mono_seconds();
  for (auto it = r.sessions.begin(); it != r.sessions.end();) {
    Session& s = *it->second;
    if (s.conn != nullptr || s.detached_since == 0.0 ||
        now - s.detached_since < config_.session_timeout) {
      ++it;
      continue;
    }
    drop_session(r, s);
    it = r.sessions.erase(it);
    session_count_.fetch_sub(1);
    m_sessions_reaped_->inc();
  }
  m_sessions_gauge_->set(static_cast<double>(session_count_.load()));
}

void EdgeFrontend::drop_session(Reactor&, Session& s) {
  // Clean the cluster up behind the vanished client: every subscription
  // this session planted is withdrawn through the normal ingress path.
  for (auto& [gid, sub] : s.subs_by_global) {
    ingress_(Envelope::of(ClientUnsubscribe{sub}));
  }
  s.subs_by_global.clear();
  s.client_to_global.clear();
  s.global_to_client.clear();
}

}  // namespace bluedove::edge
