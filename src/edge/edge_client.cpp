#include "edge/edge_client.h"

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>

#include "edge/edge_dial.h"
#include "net/wire.h"

namespace bluedove::edge {

EdgeClient::EdgeClient(net::TcpEndpoint edge, EventHandler on_event,
                       int ack_every)
    : edge_(std::move(edge)),
      on_event_(std::move(on_event)),
      ack_every_(ack_every < 1 ? 1 : ack_every) {}

EdgeClient::~EdgeClient() { disconnect(); }

bool EdgeClient::connect() {
  EdgeHello hello;  // session 0: fresh
  return handshake(hello);
}

bool EdgeClient::resume() {
  if (session_ == 0) return false;
  EdgeHello hello;
  hello.session = session_;
  hello.last_seq = last_seq_.load();
  return handshake(hello);
}

bool EdgeClient::handshake(const EdgeHello& hello) {
  disconnect();
  const int fd = dial(edge_);
  if (fd < 0) return false;
  if (!net::wire::send_frame(fd, kInvalidNode, Envelope::of(hello))) {
    ::close(fd);
    return false;
  }
  // The welcome is always the first envelope the edge sends (before any
  // replay), so a synchronous read here cannot swallow deliveries meant
  // for the reader thread: parse the first frame, consume the welcome, and
  // hand everything after it to the handler like the reader would.
  std::uint8_t lenbuf[4];
  if (!net::wire::read_all(fd, lenbuf, 4)) {
    ::close(fd);
    return false;
  }
  const std::uint32_t len = net::wire::read_frame_len(lenbuf);
  if (len == 0 || len > net::wire::kMaxFrame) {
    ::close(fd);
    return false;
  }
  auto body = std::make_shared<std::vector<std::uint8_t>>(len);
  if (!net::wire::read_all(fd, body->data(), len)) {
    ::close(fd);
    return false;
  }
  net::wire::ParsedFrame frame = net::wire::parse_frame(
      body->data(), len, std::shared_ptr<const void>(body, body.get()));
  if (!frame.ok || frame.envelopes.empty()) {
    ::close(fd);
    return false;
  }
  const auto* welcome = std::get_if<EdgeWelcome>(&frame.envelopes[0].payload);
  if (welcome == nullptr) {
    ::close(fd);
    return false;
  }
  session_ = welcome->session;
  welcome_resumed_ = welcome->resumed;
  welcome_next_seq_ = welcome->next_seq;
  fd_.store(fd);
  // Dispatch the replayed events riding in the handshake frame before the
  // reader thread exists: otherwise the reader races frame 2+ against this
  // loop — on_event_ from two threads, out-of-order delivery, and a later
  // reader store of last_seq_ overwritten by an older handshake seq (which
  // would make the next resume() re-request already-seen data).
  for (std::size_t i = 1; i < frame.envelopes.size(); ++i) {
    if (const auto* ev = std::get_if<EdgeEvent>(&frame.envelopes[i].payload)) {
      last_seq_.store(ev->seq);
      deliveries_.fetch_add(1);
      if (on_event_) on_event_(*ev);
      if (++unacked_ >= ack_every_) {
        unacked_ = 0;
        ack(ev->seq);
      }
    }
  }
  {
    bd::LockGuard lk(wait_mu_);  // pairs with wait_deliveries
  }
  wait_cv_.notify_all();
  reader_ = std::thread([this] { reader_loop(); });
  return true;
}

void EdgeClient::disconnect() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  stop_reader();
  if (fd >= 0) ::close(fd);
}

void EdgeClient::stop_reader() {
  if (reader_.joinable()) reader_.join();
}

bool EdgeClient::send_env(const Envelope& env) {
  bd::LockGuard lk(send_mu_);
  const int fd = fd_.load();
  if (fd < 0) return false;
  return net::wire::send_frame(fd, kInvalidNode, env);
}

SubscriptionId EdgeClient::subscribe(std::vector<Range> ranges) {
  Subscription sub;
  sub.id = next_sub_++;
  sub.ranges = std::move(ranges);
  return send_env(Envelope::of(ClientSubscribe{std::move(sub)})) ? sub.id : 0;
}

bool EdgeClient::unsubscribe(SubscriptionId id) {
  Subscription sub;
  sub.id = id;
  return send_env(Envelope::of(ClientUnsubscribe{std::move(sub)}));
}

MessageId EdgeClient::publish(std::vector<Value> values, std::string payload) {
  Message msg;
  msg.id = next_msg_++;
  msg.values = std::move(values);
  msg.payload = PayloadRef(std::move(payload));
  return send_env(Envelope::of(ClientPublish{std::move(msg)})) ? msg.id : 0;
}

bool EdgeClient::ack(std::uint64_t seq) {
  return send_env(Envelope::of(EdgeAck{seq}));
}

bool EdgeClient::wait_deliveries(std::uint64_t n, double timeout_sec) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_sec));
  bd::UniqueLock lk(wait_mu_);
  while (deliveries_.load() < n) {
    if (wait_cv_.wait_until(lk, deadline) == std::cv_status::timeout) {
      return deliveries_.load() >= n;
    }
  }
  return true;
}

void EdgeClient::reader_loop() {
  const int fd = fd_.load();
  if (fd < 0) return;
  std::uint8_t lenbuf[4];
  while (net::wire::read_all(fd, lenbuf, 4)) {
    const std::uint32_t len = net::wire::read_frame_len(lenbuf);
    if (len == 0 || len > net::wire::kMaxFrame) break;
    auto body = std::make_shared<std::vector<std::uint8_t>>(len);
    if (!net::wire::read_all(fd, body->data(), len)) break;
    net::wire::ParsedFrame frame = net::wire::parse_frame(
        body->data(), len, std::shared_ptr<const void>(body, body.get()));
    if (!frame.ok) break;
    for (const Envelope& env : frame.envelopes) {
      const auto* ev = std::get_if<EdgeEvent>(&env.payload);
      if (ev == nullptr) continue;
      last_seq_.store(ev->seq);
      deliveries_.fetch_add(1);
      if (on_event_) on_event_(*ev);
      if (++unacked_ >= ack_every_) {
        unacked_ = 0;
        ack(ev->seq);
      }
    }
    {
      bd::LockGuard lk(wait_mu_);  // pairs with wait_deliveries
    }
    wait_cv_.notify_all();
  }
}

}  // namespace bluedove::edge
