#pragma once
// edge::Swarm: a multiplexed client harness that holds thousands to
// hundreds of thousands of edge sessions with a handful of threads — the
// load generator behind bench/micro_edge and `bluedove_cli edge-blast`.
//
// Where EdgeClient spends a reader thread per connection, a Swarm dials
// sockets from the caller thread and parks them on shared epoll driver
// threads. Drivers do all receive-side work: welcome accounting, delivery
// sequence-continuity checks (gap/duplicate counters — the zero-loss
// oracle for the resume experiments), end-to-end latency sampling from
// publisher timestamps embedded in payloads, and cumulative acks.
//
// Scale notes: connections optionally rotate source binds across
// 127.0.0.x (see edge_dial.h) so total connections are not capped by the
// ~28k ephemeral ports of a single loopback tuple, and the fd spend is
// one per live connection — dropped sessions (server-side state awaiting
// resume) cost the swarm nothing.

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "attr/value.h"
#include "common/affinity.h"
#include "common/thread_safety.h"
#include "net/protocol.h"
#include "net/tcp_transport.h"
#include "obs/metrics.h"

namespace bluedove::edge {

struct SwarmConfig {
  net::TcpEndpoint endpoint;
  int drivers = 2;
  /// Rotate client source binds across this many 127.0.0.x addresses
  /// (starting at .2). 0 connects without binding — fine below ~25k total
  /// connections to one endpoint on loopback.
  int source_addrs = 0;
  int ack_every = 32;  ///< cumulative ack cadence, in deliveries
};

class Swarm {
 public:
  /// Generates the subscription for session `idx`; empty = no subscription.
  using SubGen = std::vector<Range> (*)(int idx, void* arg);

  explicit Swarm(SwarmConfig config);
  ~Swarm();

  Swarm(const Swarm&) = delete;
  Swarm& operator=(const Swarm&) = delete;

  /// Opens `n` new sessions (connect + hello, optional subscription
  /// pipelined in the same first frame) and waits for their welcomes.
  /// Returns sessions established before `timeout_sec`.
  int open(int n, SubGen sub_for = nullptr, void* sub_arg = nullptr,
           double timeout_sec = 60.0);
  /// Hard-closes the `n` most recently connected live sessions (no
  /// goodbye; the server keeps them resumable). Returns sessions dropped.
  int drop(int n, double timeout_sec = 30.0);
  /// Reconnects up to `n` dropped sessions with resume hellos and waits
  /// for their welcomes; replayed deliveries flow through the normal
  /// continuity/latency accounting. Returns sessions resumed.
  int resume(int n, double timeout_sec = 60.0);

  /// Publishes one message from a live session (round-robin). The payload
  /// is `payload_bytes` long (min 8) and begins with the publisher's
  /// monotonic-ns timestamp, which receiving drivers turn into end-to-end
  /// delivery latency samples. Blocks briefly when the socket is full.
  bool publish(const std::vector<Value>& values, std::size_t payload_bytes);

  /// Blocks until total deliveries reach `target` or the timeout passes.
  bool wait_delivered(std::uint64_t target, double timeout_sec);
  /// Blocks until delivery counts stop changing for `quiet_sec`.
  void drain(double quiet_sec, double timeout_sec);

  std::uint64_t live() const { return live_.load(); }
  std::uint64_t delivered() const { return delivered_.load(); }
  /// Sequence-continuity violations observed (missed / duplicated
  /// deliveries plus resume gaps reported by welcomes). 0 = lossless.
  std::uint64_t gaps() const { return gaps_.load(); }
  std::uint64_t dups() const { return dups_.load(); }
  /// Sessions a resume attempt could not recover (server had reaped them).
  std::uint64_t sessions_lost() const { return sessions_lost_.load(); }
  const obs::LatencyHistogram& latency() const { return latency_; }

 private:
  struct Peer;
  struct Driver;

  void driver_loop(Driver& d);
  BD_ANY_THREAD void handle_peer(Driver& d, Peer& p);
  void detach_peer(Driver& d, Peer& p);
  bool connect_peer(Peer& p, int idx, const Envelope* hello_frame_extra);

  SwarmConfig config_;
  std::vector<std::unique_ptr<Peer>> peers_;
  std::vector<std::unique_ptr<Driver>> drivers_;
  std::atomic<bool> stop_{false};

  std::atomic<std::uint64_t> welcomes_{0};
  std::atomic<std::uint64_t> live_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> gaps_{0};
  std::atomic<std::uint64_t> dups_{0};
  std::atomic<std::uint64_t> sessions_lost_{0};
  obs::LatencyHistogram latency_;
  std::size_t publish_rr_ = 0;  ///< caller-thread round-robin cursor
};

}  // namespace bluedove::edge
