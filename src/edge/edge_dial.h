#pragma once
// Shared client-side socket setup for the edge session clients
// (edge_client.h, edge_swarm.h): dial an endpoint with the full
// socket-option hardening set (FD_CLOEXEC, TCP_NODELAY), optionally
// binding a specific source address first.
//
// The source bind matters at benchmark scale: every connection to one
// (address, port) destination consumes a local ephemeral port, and the
// default Linux range holds ~28k. Rotating source addresses across
// 127.0.0.x — all local on Linux loopback — multiplies the tuple space,
// which is how bench/micro_edge drives 100k+ connections (and their
// TIME_WAIT residue) at one edge listener on a single host.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <string>

#include "net/tcp_transport.h"

namespace bluedove::edge {

/// Blocking connect to `endpoint`; returns the fd or -1. `source` (e.g.
/// "127.0.0.7") is bound before connecting when non-empty.
inline int dial(const net::TcpEndpoint& endpoint,
                const std::string& source = "") {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  if (!source.empty()) {
    ::sockaddr_in src{};
    src.sin_family = AF_INET;
    src.sin_port = 0;
    if (::inet_pton(AF_INET, source.c_str(), &src.sin_addr) == 1) {
      ::bind(fd, reinterpret_cast<::sockaddr*>(&src), sizeof src);
    }
  }
  ::sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  if (::inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<::sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

}  // namespace bluedove::edge
