#pragma once
// Client edge layer: an epoll reactor front end with reliable, resumable
// sessions (DESIGN.md §16).
//
// The paper's dispatchers exist to absorb client load, but node<->node TCP
// (net/tcp_transport.h) spends one thread per connection — fine for a few
// dozen cluster peers, hopeless for the paper's "millions of users". An
// EdgeFrontend multiplexes hundreds of thousands of persistent client
// sockets over a small acceptor+reactor thread pool:
//
//   acceptor      blocking accept loop; sets the socket up (non-blocking,
//                 TCP_NODELAY, FD_CLOEXEC) and hands the fd to a reactor
//                 round-robin
//   reactor x N   one epoll instance each, level-triggered, interest-mask
//                 driven: per-connection state machines assemble frames
//                 from partial reads, queue outbound bytes in a bounded
//                 per-connection buffer, and arm EPOLLOUT only while that
//                 buffer has unsent bytes. A connection whose buffer
//                 exceeds the bound is evicted (slow-client policy) — the
//                 reactor never blocks on any one socket.
//
// Sessions ride on top of connections and outlive them. A client's first
// envelope is an EdgeHello; the edge mints a session id (or resumes an
// existing one), then stamps every outbound delivery with a per-session
// sequence number and keeps a bounded replay ring of unacknowledged
// EdgeEvents. EdgeAck trims the ring; on reconnect-with-resume the ring is
// replayed past the client's last seen sequence number, so delivery is
// gap-free across drops as long as the ring has not overflowed (the
// MigratoryData recipe). Sessions that stay detached past the timeout are
// reaped, and their subscriptions unsubscribed from the cluster.
//
// Wire format on client connections is the cluster framing (net/wire.h):
// frames assemble into refcounted buffers and parse into zero-copy payload
// views, and the delivery fan-out serializes each payload straight from
// the matcher frame's shared block (attr/payload.h) — one buffer serves
// every subscriber on every socket, wire.payload_copies stays 0.
//
// Integration: the frontend owns no dispatcher logic. Client envelopes
// (subscribe / unsubscribe / publish, with ids rewritten to edge-global
// ones) are handed to the `ingress` callback — bluedove_noded wires that
// to TcpHost::inject, which runs them through DispatcherNode on its node
// thread. Deliveries fan back via deliver(), called on the node thread for
// every Delivery envelope the matchers send to the dispatcher
// (DispatcherNode::on_delivery).

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/affinity.h"
#include "common/serde.h"
#include "common/thread_safety.h"
#include "net/protocol.h"
#include "obs/metrics.h"

namespace bluedove::edge {

struct EdgeConfig {
  std::string host = "0.0.0.0";
  std::uint16_t port = 0;  ///< 0 picks an ephemeral port (readable via port())
  int reactors = 2;        ///< reactor thread count (>= 1)
  /// Accept cap across all reactors; connections beyond it are closed
  /// immediately (counted as edge.accept_rejects).
  std::size_t max_connections = 1u << 20;
  /// Slow-client bound: a connection holding more than this many unsent
  /// outbound bytes is evicted (its session stays resumable).
  std::size_t write_queue_bytes = 1u << 20;
  /// Maximum envelopes coalesced into one outbound frame (PR-3 batching).
  int fanout_batch = 64;
  /// Per-session replay ring bound, in unacknowledged deliveries. When the
  /// ring is full the oldest entry is dropped (edge.replay_overflow) and a
  /// later resume past it reports a gap.
  std::size_t replay_entries = 128;
  double session_timeout = 30.0;  ///< detached-session lifetime, seconds
  double reap_interval = 1.0;     ///< detached-session scan cadence
  int listen_backlog = 4096;
};

class EdgeFrontend {
 public:
  /// Sink for client envelopes entering the cluster. Must be callable from
  /// any reactor thread and must not block (TcpHost::inject qualifies: it
  /// enqueues onto the node task queue).
  using IngressFn = std::function<void(Envelope&&)>;

  /// Binds the listening socket immediately; start() begins serving.
  /// `node` is the hosting dispatcher's id, used for recorder bindings and
  /// thread labels.
  EdgeFrontend(EdgeConfig config, NodeId node, IngressFn ingress);
  ~EdgeFrontend();

  EdgeFrontend(const EdgeFrontend&) = delete;
  EdgeFrontend& operator=(const EdgeFrontend&) = delete;

  void start();
  void stop();  ///< idempotent; joins the acceptor and every reactor

  std::uint16_t port() const { return port_; }

  /// Routes one matched delivery to its session's reactor (the delivery's
  /// `subscriber` field is the session id). Thread-safe and non-blocking;
  /// called from the dispatcher node thread per fanned-back Delivery.
  BD_ANY_THREAD void deliver(const Delivery& d);

  /// Edge instrumentation (edge.* namespace). Snapshot-safe from any
  /// thread; bluedove_noded merges it into the dispatcher's stats export.
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  // --- introspection (tests) ----------------------------------------------
  std::uint64_t connections() const;
  std::uint64_t sessions() const;

 private:
  struct Conn;
  struct Session;
  struct Reactor;
  struct Task;

  void accept_loop();
  void reactor_loop(Reactor& r);
  void post(Reactor& r, Task&& t);

  // All of the below run on the owning reactor's thread.
  void adopt_conn(Reactor& r, std::unique_ptr<Conn> conn);
  BD_ANY_THREAD void handle_readable(Reactor& r, Conn& c);
  BD_ANY_THREAD void handle_writable(Reactor& r, Conn& c);
  BD_ANY_THREAD void handle_envelope(Reactor& r, Conn& c, Envelope&& env);
  BD_ANY_THREAD void handle_hello(Reactor& r, Conn& c, const EdgeHello& hello,
                                  std::vector<Envelope>&& rest);
  void attach_session(Reactor& r, Conn& c, const EdgeHello& hello);
  void enqueue_event(Reactor& r, Conn& c, const Envelope& env);
  void close_frame(Conn& c);
  void flush_conn(Reactor& r, Conn& c);
  void update_interest(Reactor& r, Conn& c);
  void close_conn(Reactor& r, Conn& c, bool evicted);
  void reap_sessions(Reactor& r);
  void drop_session(Reactor& r, Session& s);
  void deliver_on_reactor(Reactor& r, const Delivery& d, double enqueued_at);

  Reactor& reactor_of(std::uint64_t session) {
    return *reactors_[session % reactors_.size()];
  }

  EdgeConfig config_;
  NodeId node_;
  IngressFn ingress_;

  std::atomic<int> listen_fd_{-1};
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::thread accept_thread_;
  std::vector<std::unique_ptr<Reactor>> reactors_;

  std::atomic<std::uint64_t> conn_count_{0};
  std::atomic<std::uint64_t> session_count_{0};
  std::atomic<std::uint64_t> next_sub_id_{1};
  std::atomic<std::uint64_t> next_msg_id_{1};

  obs::MetricsRegistry metrics_;
  obs::Counter* m_accepts_ = nullptr;
  obs::Counter* m_accept_rejects_ = nullptr;
  obs::Counter* m_disconnects_ = nullptr;
  obs::Counter* m_evictions_ = nullptr;
  obs::Counter* m_malformed_ = nullptr;
  obs::Counter* m_sessions_created_ = nullptr;
  obs::Counter* m_sessions_resumed_ = nullptr;
  obs::Counter* m_sessions_reaped_ = nullptr;
  obs::Counter* m_subscribes_ = nullptr;
  obs::Counter* m_unsubscribes_ = nullptr;
  obs::Counter* m_publishes_ = nullptr;
  obs::Counter* m_acks_ = nullptr;
  obs::Counter* m_deliveries_ = nullptr;
  obs::Counter* m_deliveries_orphaned_ = nullptr;
  obs::Counter* m_replay_hits_ = nullptr;
  obs::Counter* m_replay_gaps_ = nullptr;
  obs::Counter* m_replay_overflow_ = nullptr;
  obs::Counter* m_frames_out_ = nullptr;
  obs::Counter* m_bytes_out_ = nullptr;
  obs::Gauge* m_conns_ = nullptr;
  obs::Gauge* m_sessions_gauge_ = nullptr;
  obs::Gauge* m_queue_high_water_ = nullptr;
  obs::LatencyHistogram* m_fanout_batch_ = nullptr;    ///< envelopes per frame
  obs::LatencyHistogram* m_delivery_latency_ = nullptr;  ///< deliver() -> flush
};

}  // namespace bluedove::edge
