#include "sim/sim_cluster.h"

#include "common/affinity.h"
#include "common/logging.h"
#include "obs/recorder.h"

namespace bluedove::sim {

class SimCluster::Context final : public NodeContext {
 public:
  Context(SimCluster* cluster, NodeId id, std::uint64_t seed)
      : cluster_(cluster), id_(id), rng_(seed) {}

  NodeId self() const override { return id_; }
  Timestamp now() const override { return cluster_->now(); }

  void send(NodeId to, Envelope env) override;
  TimerId set_timer(Timestamp delay, std::function<void()> fn) override;
  void cancel_timer(TimerId id) override;
  void charge(double work_units, std::function<void()> done) override;
  Rng& rng() override { return rng_; }

 private:
  SimCluster* cluster_;
  NodeId id_;
  Rng rng_;
};

struct SimCluster::Record {
  std::unique_ptr<Node> node;
  std::unique_ptr<Context> ctx;
  int cores = 4;
  bool alive = true;
  bool started = false;
  /// Bumped on kill so stale delivery / timer / charge events are dropped.
  std::uint64_t epoch = 0;
  double busy_seconds = 0.0;
  TrafficStats traffic;
};

SimCluster::SimCluster(SimConfig config)
    : config_(config), rng_(config.seed) {}

SimCluster::~SimCluster() = default;

void SimCluster::add_node(NodeId id, std::unique_ptr<Node> node, int cores) {
  auto rec = std::make_unique<Record>();
  rec->node = std::move(node);
  rec->ctx = std::make_unique<Context>(this, id, rng_.next_u64());
  rec->cores = cores;
  records_[id] = std::move(rec);
}

void SimCluster::start(NodeId id) {
  Record* rec = record(id);
  if (rec == nullptr || rec->started) return;
  rec->started = true;
  affinity::ScopedNodeBind bind(rec->ctx.get());
  obs::ScopedRecorderNode rbind(id);
  rec->node->start(*rec->ctx);
}

void SimCluster::start_all() {
  for (auto& [id, rec] : records_) {
    if (!rec->started) {
      rec->started = true;
      affinity::ScopedNodeBind bind(rec->ctx.get());
      obs::ScopedRecorderNode rbind(id);
      rec->node->start(*rec->ctx);
    }
  }
}

void SimCluster::kill(NodeId id) {
  Record* rec = record(id);
  if (rec == nullptr || !rec->alive) return;
  rec->alive = false;
  ++rec->epoch;
}

bool SimCluster::alive(NodeId id) const {
  const Record* rec = record(id);
  return rec != nullptr && rec->alive;
}

Node* SimCluster::node(NodeId id) {
  Record* rec = record(id);
  return rec != nullptr ? rec->node.get() : nullptr;
}

const Node* SimCluster::node(NodeId id) const {
  const Record* rec = record(id);
  return rec != nullptr ? rec->node.get() : nullptr;
}

SimCluster::Record* SimCluster::record(NodeId id) {
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : it->second.get();
}

const SimCluster::Record* SimCluster::record(NodeId id) const {
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : it->second.get();
}

double SimCluster::hop_latency() {
  return config_.net_latency + rng_.uniform(0.0, config_.net_jitter);
}

bool SimCluster::accounted(const Envelope& env) {
  switch (env.payload.index()) {
    case 8:   // LoadReport
    case 9:   // TablePullReq
    case 10:  // TablePullResp
    case 11:  // GossipSyn
    case 12:  // GossipAck
    case 13:  // GossipAck2
      return true;
    default:
      return false;
  }
}

void SimCluster::deliver(NodeId from, NodeId to, Envelope env,
                         std::uint64_t epoch) {
  Record* rec = record(to);
  const bool dead =
      rec == nullptr || !rec->alive || rec->epoch != epoch || !rec->started;
  if (config_.digest) {
    // The digest covers the full causal stream: (virtual time, endpoints,
    // payload kind, serialized size, delivered-or-dropped). Any divergence
    // between two same-seed runs — an extra message, a reorder, a changed
    // payload, a shifted timestamp — lands here.
    digest_.mix_double(loop_.now());
    digest_.mix(from);
    digest_.mix(to);
    digest_.mix(env.payload.index());
    digest_.mix(wire_size(env));
    digest_.mix(dead ? 1 : 0);
  }
  if (dead) {
    ++dropped_messages_;
    if (std::holds_alternative<MatchRequest>(env.payload))
      ++lost_match_requests_;
    else if (const auto* b = std::get_if<MatchRequestBatch>(&env.payload))
      lost_match_requests_ += b->reqs.size();
    return;
  }
  ++rec->traffic.msgs_received;
  if (config_.account_all_traffic || accounted(env)) {
    rec->traffic.bytes_received += wire_size(env);
  }
  affinity::ScopedNodeBind bind(rec->ctx.get());
  // One shared wall-clock thread hosts every sim node; the scoped recorder
  // binding keeps each event attributed to the node whose handler runs.
  obs::ScopedRecorderNode rbind(to);
  rec->node->on_receive(from, std::move(env));
}

void SimCluster::inject(NodeId to, Envelope env) {
  Record* rec = record(to);
  const std::uint64_t epoch = rec != nullptr ? rec->epoch : 0;
  loop_.schedule_after(
      hop_latency(),
      [this, to, epoch, env = std::move(env)]() mutable {
        deliver(kInvalidNode, to, std::move(env), epoch);
      });
}

const TrafficStats& SimCluster::traffic(NodeId id) const {
  static const TrafficStats kEmpty{};
  const Record* rec = record(id);
  return rec != nullptr ? rec->traffic : kEmpty;
}

double SimCluster::busy_seconds(NodeId id) const {
  const Record* rec = record(id);
  return rec != nullptr ? rec->busy_seconds : 0.0;
}

int SimCluster::cores(NodeId id) const {
  const Record* rec = record(id);
  return rec != nullptr ? rec->cores : 0;
}

obs::MetricsSnapshot SimCluster::metrics_snapshot() const {
  obs::MetricsSnapshot snap;
  for (const auto& [id, rec] : records_) {
    const std::string prefix = "sim.node" + std::to_string(id);
    snap.counters[prefix + ".msgs_sent"] = rec->traffic.msgs_sent;
    snap.counters[prefix + ".msgs_received"] = rec->traffic.msgs_received;
    snap.counters[prefix + ".bytes_sent"] = rec->traffic.bytes_sent;
    snap.counters[prefix + ".bytes_received"] = rec->traffic.bytes_received;
    snap.gauges[prefix + ".busy_seconds"] = rec->busy_seconds;
    snap.gauges[prefix + ".alive"] = rec->alive ? 1.0 : 0.0;
  }
  snap.counters["sim.lost_match_requests"] = lost_match_requests_;
  snap.counters["sim.dropped_messages"] = dropped_messages_;
  return snap;
}

// ---------------------------------------------------------------------------
// Context
// ---------------------------------------------------------------------------

void SimCluster::Context::send(NodeId to, Envelope env) {
  Record* self_rec = cluster_->record(id_);
  if (self_rec == nullptr || !self_rec->alive) return;  // dead men send no mail
  ++self_rec->traffic.msgs_sent;
  if (cluster_->config_.account_all_traffic || SimCluster::accounted(env)) {
    self_rec->traffic.bytes_sent += wire_size(env);
  }
  Record* target = cluster_->record(to);
  if (target == nullptr) {
    ++cluster_->dropped_messages_;
    if (std::holds_alternative<MatchRequest>(env.payload))
      ++cluster_->lost_match_requests_;
    else if (const auto* b = std::get_if<MatchRequestBatch>(&env.payload))
      cluster_->lost_match_requests_ += b->reqs.size();
    return;
  }
  const std::uint64_t epoch = target->epoch;
  cluster_->loop_.schedule_after(
      cluster_->hop_latency(),
      [cluster = cluster_, from = id_, to, epoch,
       env = std::move(env)]() mutable {
        cluster->deliver(from, to, std::move(env), epoch);
      });
}

TimerId SimCluster::Context::set_timer(Timestamp delay,
                                       std::function<void()> fn) {
  Record* rec = cluster_->record(id_);
  if (rec == nullptr) return kInvalidTimer;
  const std::uint64_t epoch = rec->epoch;
  return cluster_->loop_.schedule_after(
      delay, [cluster = cluster_, id = id_, epoch, fn = std::move(fn)] {
        Record* r = cluster->record(id);
        if (r != nullptr && r->alive && r->epoch == epoch) {
          affinity::ScopedNodeBind bind(r->ctx.get());
          obs::ScopedRecorderNode rbind(id);
          fn();
        }
      });
}

void SimCluster::Context::cancel_timer(TimerId id) {
  cluster_->loop_.cancel(id);
}

void SimCluster::Context::charge(double work_units,
                                 std::function<void()> done) {
  Record* rec = cluster_->record(id_);
  if (rec == nullptr || !rec->alive) return;
  const double t = work_units * cluster_->config_.sec_per_work_unit;
  rec->busy_seconds += t;
  const std::uint64_t epoch = rec->epoch;
  cluster_->loop_.schedule_after(
      t, [cluster = cluster_, id = id_, epoch, done = std::move(done)] {
        Record* r = cluster->record(id);
        if (r != nullptr && r->alive && r->epoch == epoch) {
          affinity::ScopedNodeBind bind(r->ctx.get());
          obs::ScopedRecorderNode rbind(id);
          done();
        }
      });
}

}  // namespace bluedove::sim
