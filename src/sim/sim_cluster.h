#pragma once
// SimCluster: the discrete-event substrate that stands in for the paper's
// 24-VM datacenter testbed.
//
// Each node runs the same Node logic as the threaded runtime, but time is
// virtual: network hops cost a configurable latency and CPU work is charged
// from the work units reported by the real matching data structures. Nodes
// can be killed (crash-stop, messages in flight to them are lost) to drive
// the fault-tolerance experiments, and new nodes can be added at runtime to
// drive the elasticity experiments.

#include <cstdint>
#include <map>
#include <memory>

#include "common/rng.h"
#include "net/transport.h"
#include "obs/audit.h"
#include "obs/metrics.h"
#include "sim/event_loop.h"

namespace bluedove::sim {

struct SimConfig {
  /// One network hop costs latency + U(0, jitter) seconds. Defaults model a
  /// datacenter LAN (paper: gigabit Ethernet between VMs).
  double net_latency = 0.0003;
  double net_jitter = 0.0001;
  /// Seconds of CPU per work unit (one subscription comparison). 1 us
  /// calibrates a 4-core matcher scanning ~8k subscriptions to ~2 ms per
  /// message, in the ballpark of the paper's Java prototype (whose 20
  /// matchers saturate near 114k msgs/s on 40k subscriptions).
  double sec_per_work_unit = 1.0e-6;
  std::uint64_t seed = 42;
  /// When true, byte counters cover every message; by default only the
  /// control plane (gossip, load reports, table pulls) is accounted, which
  /// is what the paper's overhead analysis reports.
  bool account_all_traffic = false;
  /// When true, every delivery (and every dead-target drop) is folded into
  /// the determinism digest — virtual time, endpoints, payload kind, wire
  /// size — so two same-seed runs can be compared byte-for-byte
  /// (tools/determinism_check.sh). Off by default: hashing serializes each
  /// envelope to size it, which the hot path should not pay unasked.
  bool digest = false;
};

struct TrafficStats {
  std::uint64_t msgs_sent = 0;
  std::uint64_t msgs_received = 0;
  std::uint64_t bytes_sent = 0;      ///< accounted messages only
  std::uint64_t bytes_received = 0;  ///< accounted messages only
};

class SimCluster {
 public:
  explicit SimCluster(SimConfig config = {});
  ~SimCluster();

  SimCluster(const SimCluster&) = delete;
  SimCluster& operator=(const SimCluster&) = delete;

  /// Registers a node; the cluster owns it. `cores` is recorded for CPU-load
  /// accounting (the node logic itself bounds its concurrency).
  void add_node(NodeId id, std::unique_ptr<Node> node, int cores = 4);

  /// Calls Node::start. Separate from add_node so a whole cluster can be
  /// wired up before any timer fires.
  void start(NodeId id);
  void start_all();

  /// Crash-stop: the node stops executing, in-flight messages to it are
  /// dropped, pending timers and work completions never fire.
  void kill(NodeId id);

  bool alive(NodeId id) const;
  bool exists(NodeId id) const { return records_.count(id) != 0; }

  Node* node(NodeId id);
  const Node* node(NodeId id) const;
  template <typename T>
  T* node_as(NodeId id) {
    return static_cast<T*>(node(id));
  }
  template <typename T>
  const T* node_as(NodeId id) const {
    return static_cast<const T*>(node(id));
  }

  EventLoop& loop() { return loop_; }
  Timestamp now() const { return loop_.now(); }
  void run_until(Timestamp t) { loop_.run_until(t); }
  void run_for(Timestamp dt) { loop_.run_for(dt); }

  /// Delivers a message from outside the cluster (a client) to `to` after
  /// one network hop.
  void inject(NodeId to, Envelope env);

  // --- instrumentation -----------------------------------------------------
  const TrafficStats& traffic(NodeId id) const;
  /// Total CPU-seconds this node has been charged.
  double busy_seconds(NodeId id) const;
  int cores(NodeId id) const;
  /// MatchRequests that were dropped because their target matcher was dead
  /// (the paper's lost messages in the fault-tolerance experiment).
  std::uint64_t lost_match_requests() const { return lost_match_requests_; }
  /// All messages dropped due to dead targets, any type.
  std::uint64_t dropped_messages() const { return dropped_messages_; }

  /// Determinism digest over the delivered event stream; stable across
  /// same-seed runs, 0 until SimConfig::digest enables hashing.
  std::uint64_t digest() const {
    return config_.digest ? digest_.value() : 0;
  }

  /// Substrate-level metrics: per-node traffic counters and busy-time
  /// gauges plus cluster-wide drop totals, in the obs naming scheme so they
  /// merge with node registries. Deterministic for a fixed seed (all values
  /// derive from virtual time and counted events).
  obs::MetricsSnapshot metrics_snapshot() const;

  const SimConfig& config() const { return config_; }

 private:
  struct Record;
  class Context;

  Record* record(NodeId id);
  const Record* record(NodeId id) const;
  double hop_latency();
  void deliver(NodeId from, NodeId to, Envelope env, std::uint64_t epoch);
  static bool accounted(const Envelope& env);

  SimConfig config_;
  EventLoop loop_;
  Rng rng_;
  std::map<NodeId, std::unique_ptr<Record>> records_;
  std::uint64_t lost_match_requests_ = 0;
  std::uint64_t dropped_messages_ = 0;
  obs::DeterminismDigest digest_;
};

}  // namespace bluedove::sim
