#pragma once
// Deterministic discrete-event loop: a time-ordered heap of callbacks with
// stable FIFO tie-breaking, plus cancellation via tombstones.

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "common/types.h"

namespace bluedove::sim {

using EventId = std::uint64_t;

class EventLoop {
 public:
  Timestamp now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (clamped to now). Returns an id
  /// usable with cancel().
  EventId schedule_at(Timestamp at, std::function<void()> fn);

  /// Schedules `fn` after `delay` seconds.
  EventId schedule_after(Timestamp delay, std::function<void()> fn) {
    return schedule_at(now_ + (delay > 0 ? delay : 0), std::move(fn));
  }

  /// Cancels a pending event; no-op if it already ran or was cancelled.
  void cancel(EventId id);

  /// Runs events with time <= t; leaves now() == t.
  void run_until(Timestamp t);

  /// Runs for `dt` simulated seconds.
  void run_for(Timestamp dt) { run_until(now_ + dt); }

  /// Drains the queue completely (use only when the event population is
  /// finite, e.g. unit tests).
  void run();

  bool empty() const { return heap_.size() == cancelled_.size(); }
  std::size_t pending() const { return heap_.size() - cancelled_.size(); }
  std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    Timestamp at;
    std::uint64_t seq;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    // std::push_heap builds a max-heap; invert to get earliest-first with
    // FIFO order among equal timestamps.
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Pops and runs the earliest event if it is due at or before `limit`.
  bool pop_one(Timestamp limit);

  Timestamp now_ = 0.0;
  std::uint64_t seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::vector<Event> heap_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace bluedove::sim
