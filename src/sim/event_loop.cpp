#include "sim/event_loop.h"

#include <algorithm>
#include <limits>

namespace bluedove::sim {

EventId EventLoop::schedule_at(Timestamp at, std::function<void()> fn) {
  const EventId id = next_id_++;
  heap_.push_back(Event{std::max(at, now_), seq_++, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return id;
}

void EventLoop::cancel(EventId id) {
  if (id != 0 && id < next_id_) cancelled_.insert(id);
}

bool EventLoop::pop_one(Timestamp limit) {
  while (!heap_.empty()) {
    if (heap_.front().at > limit) return false;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.at;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

void EventLoop::run_until(Timestamp t) {
  while (pop_one(t)) {
  }
  now_ = std::max(now_, t);
}

void EventLoop::run() {
  while (pop_one(std::numeric_limits<Timestamp>::max())) {
  }
}

}  // namespace bluedove::sim
