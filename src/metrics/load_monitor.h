#pragma once
// Per-node CPU-load monitoring, the sim-side analogue of the paper's
// /proc/loadavg sampling for Fig 8. The caller feeds cumulative
// busy-seconds samples (from SimCluster::busy_seconds or real rusage); the
// monitor differentiates them into interval loads (busy fraction per core).

#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace bluedove {

class LoadMonitor {
 public:
  /// Feeds a cumulative sample for one node at time `now`.
  void sample(NodeId node, Timestamp now, double cumulative_busy_seconds,
              int cores);

  /// Load over the most recent sampling interval, in [0, 1]; 0 if unknown.
  double load(NodeId node) const;

  /// Distribution of the latest loads across a node set; the paper reports
  /// its normalized standard deviation (0.14 BlueDove vs 0.82 P2P).
  OnlineStats distribution(const std::vector<NodeId>& nodes) const;

 private:
  struct Entry {
    Timestamp last_time = 0.0;
    double last_busy = 0.0;
    double load = 0.0;
    bool primed = false;
  };
  std::unordered_map<NodeId, Entry> entries_;
};

}  // namespace bluedove
