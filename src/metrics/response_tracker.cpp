#include "metrics/response_tracker.h"

namespace bluedove {

ResponseTracker::ResponseTracker(double bucket_width)
    : bucket_width_(bucket_width > 0 ? bucket_width : 1.0) {}

void ResponseTracker::add(Timestamp now, double rt) {
  ++count_;
  overall_.add(rt);
  window_.add(rt);
  reservoir_.add(rt);
  const auto bucket_start =
      bucket_width_ * static_cast<double>(
                          static_cast<long long>(now / bucket_width_));
  if (buckets_.empty() || buckets_.back().start < bucket_start) {
    buckets_.push_back(Bucket{bucket_start, {}});
  }
  buckets_.back().stats.add(rt);
}

OnlineStats ResponseTracker::window() {
  OnlineStats out = window_;
  window_.reset();
  return out;
}

void ResponseTracker::reset() {
  count_ = 0;
  overall_.reset();
  window_.reset();
  reservoir_.reset();
  buckets_.clear();
}

}  // namespace bluedove
