#include "metrics/load_monitor.h"

#include <algorithm>

namespace bluedove {

void LoadMonitor::sample(NodeId node, Timestamp now,
                         double cumulative_busy_seconds, int cores) {
  Entry& entry = entries_[node];
  if (entry.primed && now > entry.last_time && cores > 0) {
    const double dt = now - entry.last_time;
    const double busy = cumulative_busy_seconds - entry.last_busy;
    entry.load = std::clamp(busy / (dt * static_cast<double>(cores)), 0.0,
                            1.0);
  }
  entry.last_time = now;
  entry.last_busy = cumulative_busy_seconds;
  entry.primed = true;
}

double LoadMonitor::load(NodeId node) const {
  auto it = entries_.find(node);
  return it == entries_.end() ? 0.0 : it->second.load;
}

OnlineStats LoadMonitor::distribution(const std::vector<NodeId>& nodes) const {
  OnlineStats stats;
  for (NodeId node : nodes) stats.add(load(node));
  return stats;
}

}  // namespace bluedove
