#include "metrics/loss_tracker.h"

namespace bluedove {

LossTracker::LossTracker(double bucket_width)
    : bucket_width_(bucket_width > 0 ? bucket_width : 1.0) {}

LossTracker::Bucket& LossTracker::bucket_at(Timestamp now) {
  const double start =
      bucket_width_ *
      static_cast<double>(static_cast<long long>(now / bucket_width_));
  if (buckets_.empty() || buckets_.back().start < start) {
    buckets_.push_back(Bucket{start, 0, 0});
  }
  return buckets_.back();
}

void LossTracker::on_published(Timestamp now) {
  ++published_;
  ++bucket_at(now).published;
}

void LossTracker::on_completed(Timestamp now) {
  ++completed_;
  ++bucket_at(now).completed;
}

}  // namespace bluedove
