#pragma once
// Response-time accounting. The paper's response time is the duration from
// a message's arrival at a dispatcher to its return to interested
// subscribers; the tracker ingests one sample per matched message and keeps
// both whole-run statistics and a time-bucketed series (for the
// response-time-over-time plots of Figs 5, 9 and 10).

#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace bluedove {

class ResponseTracker {
 public:
  explicit ResponseTracker(double bucket_width = 5.0);

  /// Records one completed message: completion time `now`, latency `rt`.
  void add(Timestamp now, double rt);

  std::uint64_t count() const { return count_; }
  const OnlineStats& overall() const { return overall_; }
  double quantile(double q) const { return reservoir_.quantile(q); }

  struct Bucket {
    Timestamp start = 0.0;
    OnlineStats stats;
  };
  const std::vector<Bucket>& series() const { return buckets_; }

  /// Statistics accumulated since the previous window() call (for ladder
  /// probes that inspect each rate step separately).
  OnlineStats window();

  void reset();

 private:
  double bucket_width_;
  std::uint64_t count_ = 0;
  OnlineStats overall_;
  OnlineStats window_;
  QuantileReservoir reservoir_;
  std::vector<Bucket> buckets_;
};

}  // namespace bluedove
