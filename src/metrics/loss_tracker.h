#pragma once
// Message-loss accounting for the fault-tolerance experiment (Fig 10):
// published vs completed messages per time bucket. A message forwarded to a
// matcher that died before the dispatcher learned of the failure never
// completes; within a bucket that is visible as completed < published.

#include <vector>

#include "common/types.h"

namespace bluedove {

class LossTracker {
 public:
  explicit LossTracker(double bucket_width = 5.0);

  void on_published(Timestamp now);
  void on_completed(Timestamp now);

  struct Bucket {
    Timestamp start = 0.0;
    std::uint64_t published = 0;
    std::uint64_t completed = 0;

    double loss_rate() const {
      if (published == 0) return 0.0;
      const double lost = published >= completed
                              ? static_cast<double>(published - completed)
                              : 0.0;
      return lost / static_cast<double>(published);
    }
  };

  const std::vector<Bucket>& series() const { return buckets_; }
  std::uint64_t published_total() const { return published_; }
  std::uint64_t completed_total() const { return completed_; }

 private:
  Bucket& bucket_at(Timestamp now);

  double bucket_width_;
  std::uint64_t published_ = 0;
  std::uint64_t completed_ = 0;
  std::vector<Bucket> buckets_;
};

}  // namespace bluedove
