// Quickstart: the smallest complete BlueDove program.
//
// Starts an in-process BlueDove cluster (1 dispatcher, 4 matchers, gossip
// overlay and all), registers a subscription of range predicates, publishes
// a few messages and prints the ones that match.
//
//   $ ./quickstart

#include <cstdio>

#include "core/service.h"

int main() {
  using namespace bluedove;

  // Four attribute dimensions, each over [0, 1000) — the paper's default
  // schema shape.
  ServiceConfig cfg;
  cfg.dimensions = 4;
  cfg.matchers = 4;
  Service service(cfg);

  // Subscribe: one half-open range predicate per dimension. A message
  // matches when every coordinate falls inside the corresponding range.
  const SubscriptionId sub = service.subscribe(
      {Range{100, 300}, Range{0, 1000}, Range{500, 600}, Range{0, 1000}},
      [](const Delivery& d) {
        std::printf("  matched message %llu: (%.0f, %.0f, %.0f, %.0f) "
                    "\"%.*s\"\n",
                    (unsigned long long)d.msg_id, d.values[0], d.values[1],
                    d.values[2], d.values[3], (int)d.payload.size(),
                    d.payload.data());
      });
  std::printf("registered subscription %llu\n", (unsigned long long)sub);
  service.settle();  // let the subscription propagate to the matchers

  // Publish: points in the attribute space.
  service.publish({200, 400, 550, 10}, "hit: inside every range");
  service.publish({200, 400, 700, 10}, "miss: dim2 outside [500,600)");
  service.publish({150, 999, 501, 999}, "hit: corner case");
  service.publish({99, 400, 550, 10}, "miss: dim0 outside [100,300)");

  service.wait_idle();
  service.settle(0.2);  // allow deliveries to flush

  const Service::Stats stats = service.stats();
  std::printf("published=%llu matched=%llu delivered=%llu\n",
              (unsigned long long)stats.published,
              (unsigned long long)stats.completed,
              (unsigned long long)stats.delivered);
  return stats.delivered == 2 ? 0 : 1;
}
