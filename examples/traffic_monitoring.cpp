// Traffic monitoring — the paper's §I motivating scenario.
//
// Road-side sensors and smartphones publish messages with four attributes
// (longitude, latitude, speed, timestamp); drivers subscribe to congestion
// in a rectangle around their route (speed below a threshold inside their
// area). This example runs a fleet of simulated vehicles over a city grid,
// registers a set of commuter subscriptions, and reports the congestion
// alerts each commuter receives.
//
//   $ ./traffic_monitoring

#include <atomic>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/service.h"

using namespace bluedove;

int main() {
  // City: longitude in [-122.55, -122.35), latitude in [37.70, 37.85)
  // (roughly San Francisco), speed in [0, 90) mph, time-of-day in [0, 24).
  AttributeSchema schema({
      {"longitude", Range{-122.55, -122.35}},
      {"latitude", Range{37.70, 37.85}},
      {"speed", Range{0, 90}},
      {"hour", Range{0, 24}},
  });

  ServiceConfig cfg;
  cfg.schema = schema;
  cfg.matchers = 6;
  cfg.dispatchers = 2;
  Service service(cfg);

  // Commuters: each watches a small rectangle on their route for slow
  // traffic (speed < 20 mph) during their commute window.
  struct Commuter {
    const char* name;
    Range lon, lat, hours;
    std::atomic<int> alerts{0};
  };
  std::vector<std::unique_ptr<Commuter>> commuters;
  auto add_commuter = [&](const char* name, Range lon, Range lat,
                          Range hours) {
    auto c = std::make_unique<Commuter>();
    c->name = name;
    c->lon = lon;
    c->lat = lat;
    c->hours = hours;
    Commuter* raw = c.get();
    service.subscribe({lon, lat, Range{0, 20}, hours},
                      [raw](const Delivery&) {
                        raw->alerts.fetch_add(1, std::memory_order_relaxed);
                      });
    commuters.push_back(std::move(c));
  };
  add_commuter("alice   (Mission -> FiDi, morning)",
               Range{-122.43, -122.39}, Range{37.74, 37.80}, Range{7, 10});
  add_commuter("bob     (Sunset -> SoMa, morning) ",
               Range{-122.51, -122.40}, Range{37.73, 37.78}, Range{6, 9});
  add_commuter("carol   (Marina -> Mission, eve)  ",
               Range{-122.45, -122.41}, Range{37.74, 37.81}, Range{16, 20});
  add_commuter("dave    (whole city, any time)    ",
               Range{-122.55, -122.35}, Range{37.70, 37.85}, Range{0, 24});
  service.settle();

  // Vehicle fleet: 2000 position reports. Morning rush hour clusters slow
  // vehicles downtown (the data skew BlueDove exploits).
  Rng rng(2026);
  int published = 0;
  for (int i = 0; i < 2000; ++i) {
    const bool rush = rng.next_double() < 0.6;
    const double hour = rush ? rng.uniform(7, 9.5) : rng.uniform(0, 24);
    double lon, lat, speed;
    if (rush && rng.next_double() < 0.7) {
      // congested downtown core
      lon = rng.uniform(-122.42, -122.39);
      lat = rng.uniform(37.77, 37.80);
      speed = rng.uniform(2, 18);
    } else {
      lon = rng.uniform(-122.55, -122.35);
      lat = rng.uniform(37.70, 37.85);
      speed = rng.uniform(5, 75);
    }
    if (service.publish({lon, lat, speed, hour}, "position-report") != 0) {
      ++published;
    }
  }

  service.wait_idle(10.0);
  service.settle(0.3);

  std::printf("published %d vehicle reports\n\ncongestion alerts:\n",
              published);
  for (const auto& c : commuters) {
    std::printf("  %s : %5d alerts\n", c->name, c->alerts.load());
  }
  const Service::Stats stats = service.stats();
  std::printf("\ntotal matched=%llu delivered=%llu\n",
              (unsigned long long)stats.completed,
              (unsigned long long)stats.delivered);
  // Sanity: dave watches everything, so he must see every slow-ish message
  // at least as often as anyone else.
  int max_alerts = 0;
  for (const auto& c : commuters) max_alerts = std::max(max_alerts, c->alerts.load());
  return commuters.back()->alerts.load() == max_alerts ? 0 : 1;
}
