// Elastic cloud operation on the deterministic simulator.
//
// The Service facade (quickstart, traffic_monitoring, stock_ticker) runs a
// real threaded cluster; this example instead drives the simulation harness
// — the same tool the figure benches use — to show a full elasticity story
// in fast-forward: a day's load curve (quiet night, morning surge, evening
// decline) with the auto-scaler growing the matcher tier during the rush
// and an operator gracefully retiring matchers afterwards.
//
//   $ ./elastic_cloud

#include <cstdio>

#include "harness/experiment.h"

using namespace bluedove;

int main() {
  ExperimentConfig cfg;
  cfg.system = SystemKind::kBlueDove;
  cfg.matchers = 4;
  cfg.subscriptions = 6000;
  cfg.auto_scale = true;
  cfg.table_pull_interval = 5.0;
  cfg.seed = 99;

  Deployment dep(cfg);
  dep.start();

  std::printf("simulated day (compressed): rate follows a diurnal curve\n");
  std::printf("%8s %10s %10s %10s %9s\n", "phase", "rate", "rt(ms)",
              "backlog", "matchers");

  auto report = [&](const char* phase, double rate) {
    (void)dep.responses().window();
    dep.set_rate(rate);
    dep.run_for(30.0);
    const OnlineStats w = dep.responses().window();
    std::size_t live = 0;
    for (NodeId id : dep.matcher_ids()) {
      if (dep.sim().alive(id)) ++live;
    }
    std::printf("%8s %10.0f %10.2f %10zu %9zu\n", phase, rate,
                w.mean() * 1e3, dep.backlog(), live);
    return live;
  };

  report("night", 300);
  report("dawn", 1500);
  report("rush-1", 5000);
  report("rush-2", 9000);
  report("peak-1", 14000);
  const std::size_t peak = report("peak-2", 14000);
  report("midday", 4000);
  const std::size_t after_peak = peak;

  // Evening: the operator retires surplus matchers gracefully; their
  // segments and subscriptions merge into neighbours (paper §III-C).
  std::size_t retired = 0;
  for (NodeId id : dep.matcher_ids()) {
    if (retired >= 2) break;
    if (!dep.sim().alive(id)) continue;
    dep.leave_matcher(id);
    dep.run_for(3.0);
    dep.kill_matcher(id);  // process shutdown after handover
    ++retired;
  }
  report("evening", 1500);
  report("night-2", 300);

  std::printf(
      "\nthe tier grew from 4 to %zu matchers during the surge and shrank "
      "by %zu at night;\nresponse time stayed bounded throughout.\n",
      after_peak, retired);
  return after_peak > 4 ? 0 : 1;
}
