// Stock-quote distribution — another §I application class.
//
// Quotes carry (symbol-id, price, percent-change, volume). Traders register
// alert subscriptions such as "any stock in my watchlist that moves more
// than 3% on heavy volume". Demonstrates unsubscribe and elastic scale-out
// while the feed is running.
//
//   $ ./stock_ticker

#include <atomic>
#include <cstdio>

#include "common/rng.h"
#include "core/service.h"

using namespace bluedove;

int main() {
  AttributeSchema schema({
      {"symbol", Range{0, 500}},      // 500 instruments, ordered by id
      {"price", Range{0, 2000}},      // dollars
      {"change", Range{-20, 20}},     // percent since open
      {"volume", Range{0, 1000000}},  // shares per tick
  });

  ServiceConfig cfg;
  cfg.schema = schema;
  cfg.matchers = 4;
  Service service(cfg);

  std::atomic<int> momentum_alerts{0};
  std::atomic<int> crash_alerts{0};
  std::atomic<int> penny_alerts{0};

  // Trader 1: tech block (symbols 100-150) up >3% on volume > 100k.
  service.subscribe(
      {Range{100, 150}, Range{0, 2000}, Range{3, 20}, Range{100000, 1000000}},
      [&](const Delivery&) { momentum_alerts.fetch_add(1); });
  // Trader 2: anything dropping more than 8%.
  const SubscriptionId crash_sub = service.subscribe(
      {Range{0, 500}, Range{0, 2000}, Range{-20, -8}, Range{0, 1000000}},
      [&](const Delivery&) { crash_alerts.fetch_add(1); });
  // Trader 3: penny stocks (price < 5) with any movement.
  service.subscribe(
      {Range{0, 500}, Range{0, 5}, Range{-20, 20}, Range{0, 1000000}},
      [&](const Delivery&) { penny_alerts.fetch_add(1); });
  service.settle();

  Rng rng(7);
  auto publish_ticks = [&](int n) {
    for (int i = 0; i < n; ++i) {
      const double symbol = rng.uniform(0, 500);
      const double price =
          rng.next_double() < 0.1 ? rng.uniform(0.5, 5) : rng.uniform(5, 1800);
      const double change = rng.next_gaussian() * 4.0;
      const double volume = rng.uniform(0, 900000);
      service.publish({symbol, price,
                       std::min(19.9, std::max(-19.9, change)), volume});
    }
  };

  publish_ticks(3000);
  service.wait_idle(10.0);
  service.settle(0.2);
  std::printf("after first session:  momentum=%d crash=%d penny=%d\n",
              momentum_alerts.load(), crash_alerts.load(),
              penny_alerts.load());

  // The crash trader logs off; the feed heats up, so the operator scales
  // the matcher tier out by one node (elastic join under live traffic).
  service.unsubscribe(crash_sub);
  service.add_matcher();
  service.settle(0.5);
  const int crash_before = crash_alerts.load();

  publish_ticks(3000);
  service.wait_idle(10.0);
  service.settle(0.2);
  std::printf("after second session: momentum=%d crash=%d penny=%d\n",
              momentum_alerts.load(), crash_alerts.load(), penny_alerts.load());
  std::printf("matcher count now: %zu\n", service.matcher_count());

  const bool crash_quiet = crash_alerts.load() == crash_before;
  std::printf("crash trader stayed quiet after unsubscribe: %s\n",
              crash_quiet ? "yes" : "NO");
  return crash_quiet && momentum_alerts.load() > 0 && penny_alerts.load() > 0
             ? 0
             : 1;
}
